"""The Central/Master Link Layer.

Implements scanning, connection initiation (CONNECT_REQ), and the Master
side of connection events: transmit at the anchor point on the Master's own
(drifting) clock, then listen for the Slave's response.  The Master also
drives the instant-based procedures (connection update, channel map update)
and the simplified encryption-setup exchange.

The Master's scheduling is deliberately oblivious to anything the attacker
does: like real hardware, it transmits at its predicted anchor whether or
not an injected frame beat it there — which is why a successful injection
leaves the legitimate Master "ignored" (paper §VI-B) rather than disturbed.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.crypto.pairing import session_key_from_skd
from repro.crypto.session import LinkEncryption
from repro.errors import ConnectionStateError
from repro.ll.access_address import ADVERTISING_ACCESS_ADDRESS, generate_access_address
from repro.ll.connection import (
    ConnectionParams,
    ConnectionState,
    Role,
    phy_mode_from_mask,
)
from repro.ll.device import LinkLayerDevice
from repro.ll.pdu.address import BdAddress
from repro.ll.pdu.advertising import AdvInd, ConnectReq, LLData, decode_advertising_pdu
from repro.ll.pdu.control import (
    ChannelMapInd,
    LengthReq,
    LengthRsp,
    PhyRsp,
    PhyUpdateInd,
    ClockAccuracyReq,
    ClockAccuracyRsp,
    ConnectionUpdateInd,
    ControlPdu,
    EncReq,
    EncRsp,
    FeatureReq,
    FeatureRsp,
    PingReq,
    PingRsp,
    StartEncReq,
    StartEncRsp,
    TerminateInd,
    UnknownRsp,
    VersionInd,
    decode_control_pdu,
)
from repro.ll.pdu.data import DataPdu
from repro.ll.pdu.frame import compute_advertising_crc, verify_crc
from repro.phy.crc import ADVERTISING_CRC_INIT
from repro.phy.signal import RadioFrame
from repro.sim.clock import ppm_to_sca_field
from repro.sim.events import Event
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.utils.units import SLOT_US, T_IFS_US


class MasterState(enum.Enum):
    """Lifecycle states of the Central."""

    IDLE = "idle"
    SCANNING = "scanning"
    CONNECTED = "connected"


#: Grace period beyond T_IFS during which the Master waits for a response
#: to start (generous, so responses re-anchored by an injected frame are
#: still heard and the connection survives the injection).
_RESPONSE_GRACE_US = 400.0


class MasterLinkLayer(LinkLayerDevice):
    """A Central: scanner/initiator + connection Master.

    Args:
        sim, medium, name, address: see :class:`LinkLayerDevice`.
        interval: hop interval (1.25 ms slots) proposed in CONNECT_REQ.
        latency: slave latency proposed in CONNECT_REQ.
        timeout: supervision timeout (10 ms units) proposed in CONNECT_REQ.
        win_size / win_offset: transmit window parameters.
        hop_increment: CSA#1 increment; ``None`` draws one of 5-16.
        channel_map: 37-bit used-channel mask.
        use_csa2: initiate with CSA#2 instead of CSA#1.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        address: BdAddress,
        interval: int = 36,
        latency: int = 0,
        timeout: int = 100,
        win_size: int = 2,
        win_offset: int = 1,
        hop_increment: Optional[int] = None,
        channel_map: int = (1 << 37) - 1,
        use_csa2: bool = False,
        sca_ppm: float = 50.0,
        tx_power_dbm: float = 0.0,
    ):
        super().__init__(sim, medium, name, address, sca_ppm=sca_ppm,
                         tx_power_dbm=tx_power_dbm)
        self._rng: np.random.Generator = sim.streams.get(f"master-{name}")
        self.interval = interval
        self.latency = latency
        self.timeout = timeout
        self.win_size = win_size
        self.win_offset = win_offset
        self.hop_increment = (
            hop_increment if hop_increment is not None
            else int(self._rng.integers(5, 17))
        )
        self.channel_map = channel_map
        self.use_csa2 = use_csa2
        self.state = MasterState.IDLE
        self._target: Optional[BdAddress] = None
        self._pending_events: list[Event] = []
        self._anchor_local: Optional[float] = None
        self._response_deadline: Optional[Event] = None
        self._awaiting_response = False
        self._pending_encryption: Optional[LinkEncryption] = None
        self._enc_req: Optional[EncReq] = None
        self._ltk: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Scanning / initiating
    # ------------------------------------------------------------------

    def connect(self, target: BdAddress) -> None:
        """Scan for ``target`` and initiate a connection when heard."""
        if self.state is MasterState.CONNECTED:
            raise ConnectionStateError(f"{self.name}: already connected")
        self._target = target
        self.state = MasterState.SCANNING
        self._scan_channel_index = 0
        self._scan_hop()

    def _schedule(self, time_us: float, handler, label: str) -> Event:
        event = self.sim.schedule_at(max(time_us, self.sim.now), handler, label)
        self._pending_events.append(event)
        if len(self._pending_events) > 64:
            # Amortised compaction: fired and cancelled handles are
            # inert (cancel() on them is a no-op), so dropping them
            # lazily keeps this O(1) per call instead of O(n).
            self._pending_events = [e for e in self._pending_events if e.pending]
        return event

    def _cancel_pending(self) -> None:
        for event in self._pending_events:
            event.cancel()
        self._pending_events.clear()

    def _scan_hop(self) -> None:
        if self.state is not MasterState.SCANNING:
            return
        channel = (37, 38, 39)[self._scan_channel_index % 3]
        self._scan_channel_index += 1
        self.radio.listen(channel)
        self._schedule(self.sim.now + 30_000.0, self._scan_hop, "scan-hop")

    def _on_advertising_frame(self, frame: RadioFrame) -> None:
        if frame.access_address != ADVERTISING_ACCESS_ADDRESS:
            return
        if not verify_crc(frame, ADVERTISING_CRC_INIT):
            return
        try:
            pdu = decode_advertising_pdu(frame.pdu)
        except Exception:
            return
        if not isinstance(pdu, AdvInd):
            return
        if self._target is None or pdu.adv_addr.value != self._target.value:
            return
        self._cancel_pending()
        self.radio.stop_listening()
        self.peer_address = pdu.adv_addr
        req = self._build_connect_req(pdu.adv_addr)
        self._schedule(
            frame.end_us + T_IFS_US,
            lambda: self._transmit_connect_req(req, frame.channel),
            "connect-req",
        )

    def _build_connect_req(self, adv_addr: BdAddress) -> ConnectReq:
        ll_data = LLData(
            access_address=generate_access_address(self._rng),
            crc_init=int(self._rng.integers(0, 1 << 24)),
            win_size=self.win_size,
            win_offset=self.win_offset,
            interval=self.interval,
            latency=self.latency,
            timeout=self.timeout,
            channel_map=self.channel_map,
            hop_increment=self.hop_increment,
            sca=ppm_to_sca_field(self.clock.sca_ppm),
        )
        return ConnectReq(init_addr=self.address, adv_addr=adv_addr,
                          ll_data=ll_data)

    def _transmit_connect_req(self, req: ConnectReq, channel: int) -> None:
        if self.state is not MasterState.SCANNING:
            return
        pdu = req.to_bytes()
        crc = compute_advertising_crc(pdu)
        frame = self.radio.transmit(ADVERTISING_ACCESS_ADDRESS, pdu, crc, channel)
        params = ConnectionParams.from_ll_data(req.ll_data, use_csa2=self.use_csa2)
        self._schedule(frame.end_us + 1.0,
                       lambda: self._enter_connection(params, frame.end_us),
                       "enter-connection")

    def _enter_connection(self, params: ConnectionParams,
                          req_end_true_us: float) -> None:
        self.state = MasterState.CONNECTED
        self.conn = ConnectionState(params, Role.MASTER,
                                    created_local_us=self.local_now)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "conn-created",
                                  aa=params.access_address, interval=params.interval)
        # First anchor: the start of the transmit window (paper eq. 1).
        local_ref = self.clock.local_from_true(req_end_true_us)
        first_anchor = local_ref + SLOT_US + params.win_offset * SLOT_US
        self._anchor_local = first_anchor
        self._notify_connected()
        self.schedule_local(first_anchor, self._connection_event,
                            f"{self.name}-event")

    # ------------------------------------------------------------------
    # Connection events (Master side)
    # ------------------------------------------------------------------

    def _connection_event(self) -> None:
        if not self.is_connected:
            return
        conn = self._require_conn()
        if conn.supervision_expired(self.local_now):
            self.disconnect("supervision timeout")
            return
        due_map = conn.take_due_channel_map()
        if due_map is not None:
            conn.apply_channel_map(due_map)
        due_phy = conn.take_due_phy()
        if due_phy is not None:
            self.phy = phy_mode_from_mask(due_phy.m_to_s_phy)
            self.radio.rx_phy = self.phy
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name, "phy-applied",
                                      event_count=conn.event_count,
                                      phy=self.phy.value)
        channel = conn.channel_for_next_event()
        pdu = self.next_pdu_to_send()
        frame = self.transmit_pdu(pdu, channel)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "master-tx",
                                  event_count=conn.event_count,
                                  sn=pdu.header.sn, nesn=pdu.header.nesn,
                                  channel=channel)
        self._check_enc_activation(pdu)
        if pdu.is_control and len(pdu.payload) > 0 and self.encryption is None:
            control = decode_control_pdu(pdu.payload)
            if isinstance(control, TerminateInd):
                # Sender side of the terminate procedure: leave once the
                # PDU is on air (ack-waiting elided; see DESIGN.md).
                self._schedule(frame.end_us + 2.0,
                               lambda: self.disconnect("local terminate"),
                               "terminate-local")
                return
        self._awaiting_response = True
        self._schedule(frame.end_us + 1.0,
                       lambda ch=channel: self.radio.listen(ch),
                       "master-rx-on")
        self._response_deadline = self._schedule(
            frame.end_us + T_IFS_US + _RESPONSE_GRACE_US,
            self._response_timeout, "master-response-deadline",
        )

    def _check_enc_activation(self, pdu: DataPdu) -> None:
        """Track our own encryption-start control traffic."""
        if not pdu.is_control or len(pdu.payload) == 0:
            return
        if self.encryption is not None:
            return
        control = decode_control_pdu(pdu.payload)
        if isinstance(control, EncReq):
            self._enc_req = control

    def _response_timeout(self) -> None:
        if not self.is_connected or not self._awaiting_response:
            return
        lock_end = self.medium.lock_end_of(self.radio)
        if lock_end is not None:
            self._response_deadline = self._schedule(
                lock_end + 2.0, self._response_timeout, "master-rx-extend"
            )
            return
        self.radio.stop_listening()
        self._awaiting_response = False
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "response-missed",
                                  event_count=self._require_conn().event_count)
        self._end_event()

    def _on_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        if self.state is MasterState.SCANNING:
            self._on_advertising_frame(frame)
        elif self.state is MasterState.CONNECTED and self.is_connected:
            self._on_connection_frame(frame)

    def _on_connection_frame(self, frame: RadioFrame) -> None:
        conn = self._require_conn()
        if frame.access_address != conn.params.access_address:
            return
        if not self._awaiting_response:
            return
        if self._response_deadline is not None:
            self._response_deadline.cancel()
        self.radio.stop_listening()
        self._awaiting_response = False
        if verify_crc(frame, conn.params.crc_init):
            pdu = DataPdu.from_bytes(frame.pdu)
            is_new, _acked = conn.on_received_bits(pdu.header.sn, pdu.header.nesn)
            conn.note_valid_rx(self.local_now)
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name, "slave-heard",
                                      event_count=conn.event_count,
                                      sn=pdu.header.sn, nesn=pdu.header.nesn)
            if is_new and len(pdu.payload) > 0:
                decrypted = self.decrypt_if_needed(pdu)
                if decrypted is None:
                    return
                self._handle_payload(decrypted)
        else:
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name, "crc-error",
                                      event_count=conn.event_count)
        if self.is_connected:
            self._end_event()

    def _handle_payload(self, pdu: DataPdu) -> None:
        if pdu.is_control:
            self._handle_control(decode_control_pdu(pdu.payload))
        else:
            self._deliver_data(pdu.payload)

    def _handle_control(self, control: ControlPdu) -> None:
        if self.on_control is not None:
            self.on_control(control)
        if isinstance(control, TerminateInd):
            self.disconnect(f"peer terminated (0x{control.error_code:02X})")
        elif isinstance(control, EncRsp):
            if self._enc_req is not None and self._ltk is not None:
                session_key = session_key_from_skd(
                    self._ltk, self._enc_req.skd_m, control.skd_s
                )
                self.encryption = LinkEncryption(
                    session_key, self._enc_req.iv_m, control.iv_s,
                    is_master=True,
                )
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, self.name,
                                          "encryption-enabled")
        elif isinstance(control, FeatureReq):
            self.send_control(FeatureRsp(features=0))
        elif isinstance(control, LengthReq):
            self.send_control(LengthRsp())
        elif isinstance(control, (PhyRsp, LengthRsp)):
            pass
        elif isinstance(control, PingReq):
            self.send_control(PingRsp())
        elif isinstance(control, ClockAccuracyReq):
            self.send_control(
                ClockAccuracyRsp(sca=ppm_to_sca_field(self.clock.sca_ppm))
            )
        elif isinstance(control, (FeatureRsp, PingRsp, VersionInd,
                                  ClockAccuracyRsp, StartEncReq,
                                  StartEncRsp, UnknownRsp)):
            pass
        else:
            self.send_control(UnknownRsp(unknown_type=int(control.OPCODE)))

    def _end_event(self) -> None:
        conn = self._require_conn()
        assert self._anchor_local is not None
        old_interval_us = conn.params.interval_us
        conn.event_count = (conn.event_count + 1) & 0xFFFF
        predicted = self._anchor_local + old_interval_us
        due_update = conn.take_due_update()
        if due_update is not None:
            conn.apply_update(due_update)
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name,
                                      "conn-update-applied",
                                      event_count=conn.event_count,
                                      interval=conn.params.interval)
            predicted = predicted + SLOT_US + due_update.win_offset * SLOT_US
        self._anchor_local = predicted
        self.schedule_local(predicted, self._connection_event,
                            f"{self.name}-event")

    # ------------------------------------------------------------------
    # Procedures the Master can initiate
    # ------------------------------------------------------------------

    def request_connection_update(
        self,
        interval: int,
        win_size: int = 2,
        win_offset: int = 1,
        latency: int = 0,
        timeout: Optional[int] = None,
        instant_delta: int = 8,
    ) -> ConnectionUpdateInd:
        """Queue an LL_CONNECTION_UPDATE_IND and arm it locally."""
        conn = self._require_conn()
        update = ConnectionUpdateInd(
            win_size=win_size,
            win_offset=win_offset,
            interval=interval,
            latency=latency,
            timeout=timeout if timeout is not None else conn.params.timeout,
            instant=(conn.event_count + instant_delta) & 0xFFFF,
        )
        conn.schedule_update(update)
        self.send_control(update)
        return update

    def request_channel_map_update(
        self, channel_map: int, instant_delta: int = 8
    ) -> ChannelMapInd:
        """Queue an LL_CHANNEL_MAP_IND and arm it locally."""
        conn = self._require_conn()
        update = ChannelMapInd(
            channel_map=channel_map,
            instant=(conn.event_count + instant_delta) & 0xFFFF,
        )
        conn.schedule_channel_map(update)
        self.send_control(update)
        return update

    def request_phy_update(self, phy_mask: int, instant_delta: int = 8
                           ) -> PhyUpdateInd:
        """Switch both directions to a new PHY at a future instant."""
        conn = self._require_conn()
        update = PhyUpdateInd(
            m_to_s_phy=phy_mask, s_to_m_phy=phy_mask,
            instant=(conn.event_count + instant_delta) & 0xFFFF,
        )
        conn.schedule_phy(update)
        self.send_control(update)
        return update

    def start_encryption(self, ltk: bytes) -> None:
        """Kick off the (simplified) encryption-setup procedure."""
        self._require_conn()
        self._ltk = ltk
        skd_m = int(self._rng.integers(0, 1 << 63))
        iv_m = int(self._rng.integers(0, 1 << 32))
        rand = int(self._rng.integers(0, 1 << 63))
        ediv = int(self._rng.integers(0, 1 << 16))
        self.send_control(EncReq(rand=rand, ediv=ediv, skd_m=skd_m, iv_m=iv_m))

    def request_clock_accuracy(self) -> None:
        """Send LL_CLOCK_ACCURACY_REQ (leaks our SCA to any sniffer)."""
        self.send_control(ClockAccuracyReq(sca=ppm_to_sca_field(self.clock.sca_ppm)))

    def terminate(self, error_code: int = 0x13) -> None:
        """Queue LL_TERMINATE_IND and drop the connection after sending."""
        self.send_control(TerminateInd(error_code=error_code))

    def disconnect(self, reason: str) -> None:
        """Tear down and return to idle.

        If the connection setup never completed (the CONNECT_REQ or the
        first exchanges were lost — e.g. to a collision with another
        advertiser), the initiator goes back to scanning for its target,
        as real Centrals do.
        """
        never_established = (
            self.conn is not None and not self.conn.established
        )
        self._cancel_pending()
        self.state = MasterState.IDLE
        self._awaiting_response = False
        super().disconnect(reason)
        if never_established and self._target is not None:
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name,
                                      "reconnect-attempt")
            self.connect(self._target)
