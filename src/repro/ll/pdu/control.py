"""LL control PDUs.

Control PDUs ride inside data-channel PDUs with ``LLID = CONTROL``; the
first payload byte is the opcode.  The ones the attack scenarios rely on:

* ``LL_TERMINATE_IND`` — Scenario B forces the Slave out of the connection
  with a single injected terminate (paper §VI-B, Fig. 6).
* ``LL_CONNECTION_UPDATE_IND`` — Scenarios C/D inject a forged update whose
  *instant* desynchronises the legitimate Master from the Slave
  (paper §VI-C, Fig. 7).
* ``LL_CHANNEL_MAP_IND`` — same instant mechanism for the channel map.
* ``LL_CLOCK_ACCURACY_REQ/RSP`` — leak the Master's SCA to the attacker for
  the widening estimate (paper §V-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import ClassVar, Type

from repro.errors import CodecError
from repro.utils.bits import bytes_to_int_le, int_to_bytes_le


class ControlOpcode(enum.IntEnum):
    """LL control PDU opcodes (Core Spec Vol 6 Part B §2.4.2)."""

    LL_CONNECTION_UPDATE_IND = 0x00
    LL_CHANNEL_MAP_IND = 0x01
    LL_TERMINATE_IND = 0x02
    LL_ENC_REQ = 0x03
    LL_ENC_RSP = 0x04
    LL_START_ENC_REQ = 0x05
    LL_START_ENC_RSP = 0x06
    LL_UNKNOWN_RSP = 0x07
    LL_FEATURE_REQ = 0x08
    LL_FEATURE_RSP = 0x09
    LL_VERSION_IND = 0x0C
    LL_REJECT_IND = 0x0D
    LL_PING_REQ = 0x12
    LL_PING_RSP = 0x13
    LL_LENGTH_REQ = 0x14
    LL_LENGTH_RSP = 0x15
    LL_PHY_REQ = 0x16
    LL_PHY_RSP = 0x17
    LL_PHY_UPDATE_IND = 0x18
    LL_CLOCK_ACCURACY_REQ = 0x25
    LL_CLOCK_ACCURACY_RSP = 0x26


@dataclass(frozen=True)
class ControlPdu:
    """Base class: every control PDU knows its opcode and codec."""

    OPCODE: ClassVar[ControlOpcode]

    def to_payload(self) -> bytes:
        """Opcode byte followed by the CtrData encoding."""
        return bytes([int(self.OPCODE)]) + self._ctr_data()

    def _ctr_data(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "ControlPdu":
        raise NotImplementedError


def _require_len(data: bytes, expected: int, name: str) -> None:
    if len(data) != expected:
        raise CodecError(f"{name} CtrData must be {expected} bytes, got {len(data)}")


@dataclass(frozen=True)
class ConnectionUpdateInd(ControlPdu):
    """LL_CONNECTION_UPDATE_IND: re-times the connection at *instant*.

    Attributes:
        win_size: new transmit-window size in 1.25 ms slots.
        win_offset: new transmit-window offset in slots.
        interval: new hop interval in slots.
        latency: new slave latency (events the Slave may skip).
        timeout: new supervision timeout in 10 ms units.
        instant: connection event counter value at which to switch.
    """

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_CONNECTION_UPDATE_IND
    win_size: int
    win_offset: int
    interval: int
    latency: int
    timeout: int
    instant: int

    def _ctr_data(self) -> bytes:
        return (
            int_to_bytes_le(self.win_size, 1)
            + int_to_bytes_le(self.win_offset, 2)
            + int_to_bytes_le(self.interval, 2)
            + int_to_bytes_le(self.latency, 2)
            + int_to_bytes_le(self.timeout, 2)
            + int_to_bytes_le(self.instant, 2)
        )

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "ConnectionUpdateInd":
        _require_len(data, 11, "LL_CONNECTION_UPDATE_IND")
        return cls(
            win_size=data[0],
            win_offset=bytes_to_int_le(data[1:3]),
            interval=bytes_to_int_le(data[3:5]),
            latency=bytes_to_int_le(data[5:7]),
            timeout=bytes_to_int_le(data[7:9]),
            instant=bytes_to_int_le(data[9:11]),
        )


@dataclass(frozen=True)
class ChannelMapInd(ControlPdu):
    """LL_CHANNEL_MAP_IND: new 37-bit channel map applied at *instant*."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_CHANNEL_MAP_IND
    channel_map: int
    instant: int

    def _ctr_data(self) -> bytes:
        if not 0 <= self.channel_map < 1 << 37:
            raise CodecError(f"channel map out of range: {self.channel_map:#x}")
        return int_to_bytes_le(self.channel_map, 5) + int_to_bytes_le(self.instant, 2)

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "ChannelMapInd":
        _require_len(data, 7, "LL_CHANNEL_MAP_IND")
        return cls(
            channel_map=bytes_to_int_le(data[0:5]),
            instant=bytes_to_int_le(data[5:7]),
        )


@dataclass(frozen=True)
class TerminateInd(ControlPdu):
    """LL_TERMINATE_IND: sender is leaving the connection.

    ``error_code`` is an HCI error constant; 0x13 is the usual
    "remote user terminated connection".
    """

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_TERMINATE_IND
    error_code: int = 0x13

    def _ctr_data(self) -> bytes:
        return int_to_bytes_le(self.error_code, 1)

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "TerminateInd":
        _require_len(data, 1, "LL_TERMINATE_IND")
        return cls(error_code=data[0])


@dataclass(frozen=True)
class EncReq(ControlPdu):
    """LL_ENC_REQ: Master starts the encryption-setup procedure."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_ENC_REQ
    rand: int
    ediv: int
    skd_m: int
    iv_m: int

    def _ctr_data(self) -> bytes:
        return (
            int_to_bytes_le(self.rand, 8)
            + int_to_bytes_le(self.ediv, 2)
            + int_to_bytes_le(self.skd_m, 8)
            + int_to_bytes_le(self.iv_m, 4)
        )

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "EncReq":
        _require_len(data, 22, "LL_ENC_REQ")
        return cls(
            rand=bytes_to_int_le(data[0:8]),
            ediv=bytes_to_int_le(data[8:10]),
            skd_m=bytes_to_int_le(data[10:18]),
            iv_m=bytes_to_int_le(data[18:22]),
        )


@dataclass(frozen=True)
class EncRsp(ControlPdu):
    """LL_ENC_RSP: Slave's half of the session-key diversifier and IV."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_ENC_RSP
    skd_s: int
    iv_s: int

    def _ctr_data(self) -> bytes:
        return int_to_bytes_le(self.skd_s, 8) + int_to_bytes_le(self.iv_s, 4)

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "EncRsp":
        _require_len(data, 12, "LL_ENC_RSP")
        return cls(skd_s=bytes_to_int_le(data[0:8]), iv_s=bytes_to_int_le(data[8:12]))


@dataclass(frozen=True)
class StartEncReq(ControlPdu):
    """LL_START_ENC_REQ (no CtrData)."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_START_ENC_REQ

    def _ctr_data(self) -> bytes:
        return b""

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "StartEncReq":
        _require_len(data, 0, "LL_START_ENC_REQ")
        return cls()


@dataclass(frozen=True)
class StartEncRsp(ControlPdu):
    """LL_START_ENC_RSP (no CtrData)."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_START_ENC_RSP

    def _ctr_data(self) -> bytes:
        return b""

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "StartEncRsp":
        _require_len(data, 0, "LL_START_ENC_RSP")
        return cls()


@dataclass(frozen=True)
class UnknownRsp(ControlPdu):
    """LL_UNKNOWN_RSP: peer did not understand ``unknown_type``."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_UNKNOWN_RSP
    unknown_type: int = 0

    def _ctr_data(self) -> bytes:
        return int_to_bytes_le(self.unknown_type, 1)

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "UnknownRsp":
        _require_len(data, 1, "LL_UNKNOWN_RSP")
        return cls(unknown_type=data[0])


@dataclass(frozen=True)
class FeatureReq(ControlPdu):
    """LL_FEATURE_REQ with the 64-bit feature set."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_FEATURE_REQ
    features: int = 0

    def _ctr_data(self) -> bytes:
        return int_to_bytes_le(self.features, 8)

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "FeatureReq":
        _require_len(data, 8, "LL_FEATURE_REQ")
        return cls(features=bytes_to_int_le(data))


@dataclass(frozen=True)
class FeatureRsp(ControlPdu):
    """LL_FEATURE_RSP with the 64-bit feature set."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_FEATURE_RSP
    features: int = 0

    def _ctr_data(self) -> bytes:
        return int_to_bytes_le(self.features, 8)

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "FeatureRsp":
        _require_len(data, 8, "LL_FEATURE_RSP")
        return cls(features=bytes_to_int_le(data))


@dataclass(frozen=True)
class VersionInd(ControlPdu):
    """LL_VERSION_IND: version / company / subversion triple."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_VERSION_IND
    version: int = 0x09  # BLE 5.0
    company: int = 0xFFFF
    subversion: int = 0

    def _ctr_data(self) -> bytes:
        return (
            int_to_bytes_le(self.version, 1)
            + int_to_bytes_le(self.company, 2)
            + int_to_bytes_le(self.subversion, 2)
        )

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "VersionInd":
        _require_len(data, 5, "LL_VERSION_IND")
        return cls(
            version=data[0],
            company=bytes_to_int_le(data[1:3]),
            subversion=bytes_to_int_le(data[3:5]),
        )


@dataclass(frozen=True)
class RejectInd(ControlPdu):
    """LL_REJECT_IND with an error code."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_REJECT_IND
    error_code: int = 0x0C

    def _ctr_data(self) -> bytes:
        return int_to_bytes_le(self.error_code, 1)

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "RejectInd":
        _require_len(data, 1, "LL_REJECT_IND")
        return cls(error_code=data[0])


@dataclass(frozen=True)
class PingReq(ControlPdu):
    """LL_PING_REQ (no CtrData)."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_PING_REQ

    def _ctr_data(self) -> bytes:
        return b""

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "PingReq":
        _require_len(data, 0, "LL_PING_REQ")
        return cls()


@dataclass(frozen=True)
class PingRsp(ControlPdu):
    """LL_PING_RSP (no CtrData)."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_PING_RSP

    def _ctr_data(self) -> bytes:
        return b""

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "PingRsp":
        _require_len(data, 0, "LL_PING_RSP")
        return cls()


@dataclass(frozen=True)
class LengthReq(ControlPdu):
    """LL_LENGTH_REQ: data length extension negotiation (BLE 4.2)."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_LENGTH_REQ
    max_rx_octets: int = 251
    max_rx_time: int = 2120
    max_tx_octets: int = 251
    max_tx_time: int = 2120

    def _ctr_data(self) -> bytes:
        return (int_to_bytes_le(self.max_rx_octets, 2)
                + int_to_bytes_le(self.max_rx_time, 2)
                + int_to_bytes_le(self.max_tx_octets, 2)
                + int_to_bytes_le(self.max_tx_time, 2))

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "LengthReq":
        _require_len(data, 8, "LL_LENGTH_REQ")
        return cls(
            max_rx_octets=bytes_to_int_le(data[0:2]),
            max_rx_time=bytes_to_int_le(data[2:4]),
            max_tx_octets=bytes_to_int_le(data[4:6]),
            max_tx_time=bytes_to_int_le(data[6:8]),
        )


@dataclass(frozen=True)
class LengthRsp(ControlPdu):
    """LL_LENGTH_RSP: responder's data length capabilities."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_LENGTH_RSP
    max_rx_octets: int = 251
    max_rx_time: int = 2120
    max_tx_octets: int = 251
    max_tx_time: int = 2120

    def _ctr_data(self) -> bytes:
        return (int_to_bytes_le(self.max_rx_octets, 2)
                + int_to_bytes_le(self.max_rx_time, 2)
                + int_to_bytes_le(self.max_tx_octets, 2)
                + int_to_bytes_le(self.max_tx_time, 2))

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "LengthRsp":
        _require_len(data, 8, "LL_LENGTH_RSP")
        return cls(
            max_rx_octets=bytes_to_int_le(data[0:2]),
            max_rx_time=bytes_to_int_le(data[2:4]),
            max_tx_octets=bytes_to_int_le(data[4:6]),
            max_tx_time=bytes_to_int_le(data[6:8]),
        )


#: PHY selection bits of the PHY update procedure.
PHY_1M = 0x01
PHY_2M = 0x02
PHY_CODED = 0x04


@dataclass(frozen=True)
class PhyReq(ControlPdu):
    """LL_PHY_REQ: sender's preferred PHYs (bitmasks)."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_PHY_REQ
    tx_phys: int = PHY_2M
    rx_phys: int = PHY_2M

    def _ctr_data(self) -> bytes:
        return bytes([self.tx_phys, self.rx_phys])

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "PhyReq":
        _require_len(data, 2, "LL_PHY_REQ")
        return cls(tx_phys=data[0], rx_phys=data[1])


@dataclass(frozen=True)
class PhyRsp(ControlPdu):
    """LL_PHY_RSP: responder's acceptable PHYs."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_PHY_RSP
    tx_phys: int = PHY_1M | PHY_2M
    rx_phys: int = PHY_1M | PHY_2M

    def _ctr_data(self) -> bytes:
        return bytes([self.tx_phys, self.rx_phys])

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "PhyRsp":
        _require_len(data, 2, "LL_PHY_RSP")
        return cls(tx_phys=data[0], rx_phys=data[1])


@dataclass(frozen=True)
class PhyUpdateInd(ControlPdu):
    """LL_PHY_UPDATE_IND: the Master fixes the new PHYs at *instant*.

    Another instant-based procedure (like the connection update Scenario C
    forges): an attacker with the injection primitive can force a PHY
    switch the legitimate Master never asked for.
    """

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_PHY_UPDATE_IND
    m_to_s_phy: int = PHY_2M
    s_to_m_phy: int = PHY_2M
    instant: int = 0

    def _ctr_data(self) -> bytes:
        return (bytes([self.m_to_s_phy, self.s_to_m_phy])
                + int_to_bytes_le(self.instant, 2))

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "PhyUpdateInd":
        _require_len(data, 4, "LL_PHY_UPDATE_IND")
        return cls(m_to_s_phy=data[0], s_to_m_phy=data[1],
                   instant=bytes_to_int_le(data[2:4]))


@dataclass(frozen=True)
class ClockAccuracyReq(ControlPdu):
    """LL_CLOCK_ACCURACY_REQ: advertises the sender's SCA field (0-7)."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_CLOCK_ACCURACY_REQ
    sca: int = 0

    def _ctr_data(self) -> bytes:
        return int_to_bytes_le(self.sca, 1)

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "ClockAccuracyReq":
        _require_len(data, 1, "LL_CLOCK_ACCURACY_REQ")
        return cls(sca=data[0])


@dataclass(frozen=True)
class ClockAccuracyRsp(ControlPdu):
    """LL_CLOCK_ACCURACY_RSP: responder's SCA field (0-7)."""

    OPCODE: ClassVar[ControlOpcode] = ControlOpcode.LL_CLOCK_ACCURACY_RSP
    sca: int = 0

    def _ctr_data(self) -> bytes:
        return int_to_bytes_le(self.sca, 1)

    @classmethod
    def _from_ctr_data(cls, data: bytes) -> "ClockAccuracyRsp":
        _require_len(data, 1, "LL_CLOCK_ACCURACY_RSP")
        return cls(sca=data[0])


_OPCODE_TO_CLASS: dict[ControlOpcode, Type[ControlPdu]] = {
    cls.OPCODE: cls
    for cls in (
        ConnectionUpdateInd,
        ChannelMapInd,
        TerminateInd,
        EncReq,
        EncRsp,
        StartEncReq,
        StartEncRsp,
        UnknownRsp,
        FeatureReq,
        FeatureRsp,
        VersionInd,
        RejectInd,
        PingReq,
        PingRsp,
        LengthReq,
        LengthRsp,
        PhyReq,
        PhyRsp,
        PhyUpdateInd,
        ClockAccuracyReq,
        ClockAccuracyRsp,
    )
}


def decode_control_pdu(payload: bytes) -> ControlPdu:
    """Decode a control PDU from a data-PDU payload (opcode + CtrData)."""
    if not payload:
        raise CodecError("empty control PDU")
    try:
        opcode = ControlOpcode(payload[0])
    except ValueError:
        raise CodecError(f"unknown LL control opcode 0x{payload[0]:02X}") from None
    return _OPCODE_TO_CLASS[opcode]._from_ctr_data(payload[1:])
