"""Frame-level helpers tying PDUs to the on-air representation.

The simulator's :class:`~repro.phy.signal.RadioFrame` carries un-whitened
PDU bytes and the CRC as an integer (whitening is an involution the medium
treats as transparent; corruption is modelled at the bit level by the
collision model).  These helpers compute/verify CRCs and decode data frames
into typed PDUs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import CodecError
from repro.ll.pdu.control import ControlPdu, decode_control_pdu
from repro.ll.pdu.data import DataPdu
from repro.phy.crc import ADVERTISING_CRC_INIT, crc24
from repro.phy.signal import RadioFrame


def compute_crc(pdu_bytes: bytes, crc_init: int) -> int:
    """CRC-24 of a PDU under the connection's CRCInit."""
    return crc24(pdu_bytes, crc_init)


def compute_advertising_crc(pdu_bytes: bytes) -> int:
    """CRC-24 of an advertising PDU (fixed 0x555555 seed)."""
    return crc24(pdu_bytes, ADVERTISING_CRC_INIT)


def verify_crc(frame: RadioFrame, crc_init: int) -> bool:
    """Whether ``frame`` passes CRC under ``crc_init``.

    A frame marked corrupted by the collision model never verifies: the
    flipped bits would change the computed CRC (we model corruption as a
    boolean rather than mutating bytes, so integrity checking is exact).
    """
    if frame.corrupted:
        return False
    return crc24(frame.pdu, crc_init) == frame.crc


def decode_data_frame(frame: RadioFrame, crc_init: int) -> Optional[DataPdu]:
    """Decode a data-channel frame into a :class:`DataPdu`.

    Returns ``None`` when the CRC does not verify (the Link Layer must then
    apply the NESN-retransmission rule rather than raising), and raises
    :class:`~repro.errors.CodecError` for structurally invalid PDUs, which
    indicates a bug rather than an on-air loss.
    """
    if not verify_crc(frame, crc_init):
        return None
    return DataPdu.from_bytes(frame.pdu)


def control_in(pdu: DataPdu) -> Optional[ControlPdu]:
    """The control PDU inside ``pdu``, or ``None`` if it is not control."""
    if not pdu.is_control:
        return None
    return decode_control_pdu(pdu.payload)
