"""Advertising-channel PDUs, including CONNECT_REQ (paper Table II).

The advertising header byte carries the PDU type (4 bits), TxAdd and RxAdd
flags; byte 1 is the length.  CONNECT_REQ's LLData block is where every
connection parameter the attack needs originates: access address, CRCInit,
WinSize/WinOffset, Hop Interval, Slave latency, supervision timeout,
channel map, hop increment and the Master's SCA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.errors import CodecError
from repro.ll.pdu.address import BdAddress
from repro.utils.bits import bytes_to_int_le, int_to_bytes_le


class AdvPduType(enum.IntEnum):
    """Advertising-channel PDU types."""

    ADV_IND = 0b0000
    ADV_DIRECT_IND = 0b0001
    ADV_NONCONN_IND = 0b0010
    SCAN_REQ = 0b0011
    SCAN_RSP = 0b0100
    CONNECT_REQ = 0b0101
    ADV_SCAN_IND = 0b0110


def _header(pdu_type: AdvPduType, length: int, tx_add: bool, rx_add: bool) -> bytes:
    if not 0 <= length <= 255:
        raise CodecError(f"advertising payload too long: {length}")
    byte0 = int(pdu_type) | (int(tx_add) << 6) | (int(rx_add) << 7)
    return bytes((byte0, length))


@dataclass(frozen=True)
class AdvInd:
    """ADV_IND: connectable undirected advertisement.

    Attributes:
        adv_addr: advertiser's device address.
        adv_data: AD structures (name, flags, ...), up to 31 bytes.
    """

    adv_addr: BdAddress
    adv_data: bytes = b""

    def __post_init__(self) -> None:
        if len(self.adv_data) > 31:
            raise CodecError(f"AdvData too long: {len(self.adv_data)}")

    def to_bytes(self) -> bytes:
        """Full advertising PDU bytes."""
        body = self.adv_addr.to_bytes() + self.adv_data
        return _header(AdvPduType.ADV_IND, len(body),
                       self.adv_addr.random, False) + body

    @classmethod
    def from_body(cls, body: bytes, tx_add: bool) -> "AdvInd":
        """Decode from the PDU body (header already parsed)."""
        if len(body) < 6:
            raise CodecError("ADV_IND body shorter than an address")
        return cls(BdAddress.from_bytes(body[:6], tx_add), body[6:])


@dataclass(frozen=True)
class ScanReq:
    """SCAN_REQ: scanner asks an advertiser for more data."""

    scan_addr: BdAddress
    adv_addr: BdAddress

    def to_bytes(self) -> bytes:
        """Full advertising PDU bytes."""
        body = self.scan_addr.to_bytes() + self.adv_addr.to_bytes()
        return _header(AdvPduType.SCAN_REQ, len(body),
                       self.scan_addr.random, self.adv_addr.random) + body

    @classmethod
    def from_body(cls, body: bytes, tx_add: bool, rx_add: bool) -> "ScanReq":
        """Decode from the PDU body (header already parsed)."""
        if len(body) != 12:
            raise CodecError(f"SCAN_REQ body must be 12 bytes, got {len(body)}")
        return cls(
            BdAddress.from_bytes(body[:6], tx_add),
            BdAddress.from_bytes(body[6:], rx_add),
        )


@dataclass(frozen=True)
class ScanRsp:
    """SCAN_RSP: advertiser's answer to SCAN_REQ."""

    adv_addr: BdAddress
    scan_data: bytes = b""

    def __post_init__(self) -> None:
        if len(self.scan_data) > 31:
            raise CodecError(f"ScanRspData too long: {len(self.scan_data)}")

    def to_bytes(self) -> bytes:
        """Full advertising PDU bytes."""
        body = self.adv_addr.to_bytes() + self.scan_data
        return _header(AdvPduType.SCAN_RSP, len(body),
                       self.adv_addr.random, False) + body

    @classmethod
    def from_body(cls, body: bytes, tx_add: bool) -> "ScanRsp":
        """Decode from the PDU body (header already parsed)."""
        if len(body) < 6:
            raise CodecError("SCAN_RSP body shorter than an address")
        return cls(BdAddress.from_bytes(body[:6], tx_add), body[6:])


@dataclass(frozen=True)
class LLData:
    """The 22-byte LLData block of CONNECT_REQ (paper Table II).

    Attributes:
        access_address: 32-bit AA every connection frame will carry.
        crc_init: 24-bit CRC seed for the connection.
        win_size: transmit-window size, 1.25 ms slots (1-8).
        win_offset: transmit-window offset, 1.25 ms slots.
        interval: hop interval, 1.25 ms slots (6-3200).
        latency: slave latency in events.
        timeout: supervision timeout in 10 ms units.
        channel_map: 37-bit used-channel bitmask.
        hop_increment: CSA#1 hop increment (5-16), 5 bits on air.
        sca: Master's sleep-clock-accuracy field (0-7), 3 bits on air.
    """

    access_address: int
    crc_init: int
    win_size: int
    win_offset: int
    interval: int
    latency: int
    timeout: int
    channel_map: int
    hop_increment: int
    sca: int

    def __post_init__(self) -> None:
        checks = (
            (0 <= self.access_address < 1 << 32, "access address"),
            (0 <= self.crc_init < 1 << 24, "CRCInit"),
            (1 <= self.win_size <= 8, "WinSize"),
            (0 <= self.win_offset < 1 << 16, "WinOffset"),
            (6 <= self.interval <= 3200, "interval"),
            (0 <= self.latency < 1 << 16, "latency"),
            (0 <= self.timeout < 1 << 16, "timeout"),
            (0 < self.channel_map < 1 << 37, "channel map"),
            (5 <= self.hop_increment <= 16, "hop increment"),
            (0 <= self.sca <= 7, "SCA"),
        )
        for ok, name in checks:
            if not ok:
                raise CodecError(f"LLData field out of range: {name}")

    def to_bytes(self) -> bytes:
        """Encode the LLData block."""
        return (
            int_to_bytes_le(self.access_address, 4)
            + int_to_bytes_le(self.crc_init, 3)
            + int_to_bytes_le(self.win_size, 1)
            + int_to_bytes_le(self.win_offset, 2)
            + int_to_bytes_le(self.interval, 2)
            + int_to_bytes_le(self.latency, 2)
            + int_to_bytes_le(self.timeout, 2)
            + int_to_bytes_le(self.channel_map, 5)
            + bytes([(self.hop_increment & 0x1F) | (self.sca << 5)])
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "LLData":
        """Decode a 22-byte LLData block."""
        if len(data) != 22:
            raise CodecError(f"LLData must be 22 bytes, got {len(data)}")
        return cls(
            access_address=bytes_to_int_le(data[0:4]),
            crc_init=bytes_to_int_le(data[4:7]),
            win_size=data[7],
            win_offset=bytes_to_int_le(data[8:10]),
            interval=bytes_to_int_le(data[10:12]),
            latency=bytes_to_int_le(data[12:14]),
            timeout=bytes_to_int_le(data[14:16]),
            channel_map=bytes_to_int_le(data[16:21]),
            hop_increment=data[21] & 0x1F,
            sca=(data[21] >> 5) & 0x7,
        )


@dataclass(frozen=True)
class ConnectReq:
    """CONNECT_REQ: the connection-initiating PDU (paper Table II)."""

    init_addr: BdAddress
    adv_addr: BdAddress
    ll_data: LLData

    def to_bytes(self) -> bytes:
        """Full advertising PDU bytes (header + 34-byte body)."""
        body = (
            self.init_addr.to_bytes()
            + self.adv_addr.to_bytes()
            + self.ll_data.to_bytes()
        )
        return _header(AdvPduType.CONNECT_REQ, len(body),
                       self.init_addr.random, self.adv_addr.random) + body

    @classmethod
    def from_body(cls, body: bytes, tx_add: bool, rx_add: bool) -> "ConnectReq":
        """Decode from the PDU body (header already parsed)."""
        if len(body) != 34:
            raise CodecError(f"CONNECT_REQ body must be 34 bytes, got {len(body)}")
        return cls(
            init_addr=BdAddress.from_bytes(body[0:6], tx_add),
            adv_addr=BdAddress.from_bytes(body[6:12], rx_add),
            ll_data=LLData.from_bytes(body[12:34]),
        )


AdvertisingPdu = Union[AdvInd, ScanReq, ScanRsp, ConnectReq]


def decode_advertising_pdu(data: bytes) -> AdvertisingPdu:
    """Decode an advertising-channel PDU from its on-air bytes."""
    if len(data) < 2:
        raise CodecError("advertising PDU shorter than its header")
    byte0, length = data[0], data[1]
    body = data[2:]
    if len(body) != length:
        raise CodecError(f"length mismatch: header {length}, body {len(body)}")
    tx_add = bool((byte0 >> 6) & 1)
    rx_add = bool((byte0 >> 7) & 1)
    try:
        pdu_type = AdvPduType(byte0 & 0x0F)
    except ValueError:
        raise CodecError(f"unknown advertising PDU type {byte0 & 0x0F}") from None
    if pdu_type is AdvPduType.ADV_IND:
        return AdvInd.from_body(body, tx_add)
    if pdu_type is AdvPduType.SCAN_REQ:
        return ScanReq.from_body(body, tx_add, rx_add)
    if pdu_type is AdvPduType.SCAN_RSP:
        return ScanRsp.from_body(body, tx_add)
    if pdu_type is AdvPduType.CONNECT_REQ:
        return ConnectReq.from_body(body, tx_add, rx_add)
    raise CodecError(f"unsupported advertising PDU type: {pdu_type.name}")
