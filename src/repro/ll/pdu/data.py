"""Data-channel PDUs: the 2-byte header and payload.

The header carries the fields at the heart of the injection attack's
consistency requirement (paper §V-C, eq. 6): the *Sequence Number* (SN) and
*Next Expected Sequence Number* (NESN) bits that implement the Link Layer's
1-bit sliding-window ARQ, plus the *More Data* (MD) bit and the LLID that
distinguishes L2CAP data from LL control traffic.

Header byte 0 layout (LSB first): LLID[0:2], NESN[2], SN[3], MD[4], RFU[5:8].
Byte 1 is the payload length.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CodecError

#: Maximum payload of an (un-extended) data PDU.
MAX_DATA_PAYLOAD = 251


class LLID(enum.IntEnum):
    """Logical link identifier of a data-channel PDU."""

    #: Continuation fragment of an L2CAP message, or empty PDU.
    DATA_CONTINUATION = 0b01
    #: Start of an L2CAP message (or a complete one).
    DATA_START = 0b10
    #: LL control PDU.
    CONTROL = 0b11


@dataclass(frozen=True)
class DataHeader:
    """Decoded 2-byte data-channel PDU header.

    Attributes:
        llid: logical link identifier.
        nesn: next expected sequence number bit.
        sn: sequence number bit.
        md: more-data bit (keeps a connection event open).
        length: payload length in bytes.
    """

    llid: LLID
    nesn: int = 0
    sn: int = 0
    md: int = 0
    length: int = 0

    def __post_init__(self) -> None:
        for name in ("nesn", "sn", "md"):
            bit = getattr(self, name)
            if bit not in (0, 1):
                raise CodecError(f"{name} must be 0 or 1, got {bit}")
        if not 0 <= self.length <= MAX_DATA_PAYLOAD:
            raise CodecError(f"payload length out of range: {self.length}")

    def to_bytes(self) -> bytes:
        """Encode the header."""
        byte0 = (
            int(self.llid)
            | (self.nesn << 2)
            | (self.sn << 3)
            | (self.md << 4)
        )
        return bytes((byte0, self.length))

    @classmethod
    def from_bytes(cls, data: bytes) -> "DataHeader":
        """Decode a header from at least 2 bytes."""
        if len(data) < 2:
            raise CodecError(f"data header needs 2 bytes, got {len(data)}")
        byte0 = data[0]
        llid_raw = byte0 & 0b11
        if llid_raw == 0:
            raise CodecError("reserved LLID 0b00")
        return cls(
            llid=LLID(llid_raw),
            nesn=(byte0 >> 2) & 1,
            sn=(byte0 >> 3) & 1,
            md=(byte0 >> 4) & 1,
            length=data[1],
        )


@dataclass(frozen=True)
class DataPdu:
    """A full data-channel PDU: header plus payload.

    The empty PDU (``LLID=DATA_CONTINUATION``, length 0) is what a device
    sends when polled without data to transmit (paper §III-B5).
    """

    header: DataHeader
    payload: bytes = b""

    def __post_init__(self) -> None:
        if len(self.payload) != self.header.length:
            raise CodecError(
                f"payload length {len(self.payload)} != header length "
                f"{self.header.length}"
            )

    @classmethod
    def make(cls, llid: LLID, payload: bytes = b"", sn: int = 0, nesn: int = 0,
             md: int = 0) -> "DataPdu":
        """Build a PDU with a consistent header length field."""
        return cls(DataHeader(llid, nesn, sn, md, len(payload)), payload)

    @classmethod
    def empty(cls, sn: int = 0, nesn: int = 0) -> "DataPdu":
        """The empty (keep-alive / ack-only) PDU."""
        return cls.make(LLID.DATA_CONTINUATION, b"", sn=sn, nesn=nesn)

    @property
    def is_empty(self) -> bool:
        """Whether this is the empty PDU."""
        return (
            self.header.llid is LLID.DATA_CONTINUATION and self.header.length == 0
        )

    @property
    def is_control(self) -> bool:
        """Whether the payload is an LL control PDU."""
        return self.header.llid is LLID.CONTROL

    def to_bytes(self) -> bytes:
        """Full on-air PDU bytes (header + payload)."""
        return self.header.to_bytes() + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "DataPdu":
        """Decode a PDU; validates the length field against the buffer."""
        header = DataHeader.from_bytes(data)
        payload = data[2 : 2 + header.length]
        if len(payload) != header.length:
            raise CodecError(
                f"truncated PDU: header says {header.length}, "
                f"have {len(payload)}"
            )
        if len(data) != 2 + header.length:
            raise CodecError(
                f"trailing bytes after PDU: {len(data) - 2 - header.length}"
            )
        return cls(header, payload)

    def with_bits(self, sn: int, nesn: int) -> "DataPdu":
        """Copy of this PDU with new SN/NESN bits (used at transmit time)."""
        return DataPdu(
            DataHeader(self.header.llid, nesn, sn, self.header.md,
                       self.header.length),
            self.payload,
        )
