"""Bluetooth device addresses (BD_ADDR)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import CodecError


@dataclass(frozen=True)
class BdAddress:
    """A 48-bit Bluetooth device address.

    Attributes:
        value: the address as an integer (0 <= value < 2^48).
        random: whether this is a random (vs public) address; carried in the
            TxAdd/RxAdd bits of advertising PDU headers.
    """

    value: int
    random: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 48:
            raise CodecError(f"BD_ADDR out of range: {self.value:#x}")

    @classmethod
    def from_bytes(cls, data: bytes, random: bool = False) -> "BdAddress":
        """Decode 6 little-endian bytes (on-air order)."""
        if len(data) != 6:
            raise CodecError(f"BD_ADDR must be 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "little"), random)

    @classmethod
    def from_str(cls, text: str, random: bool = False) -> "BdAddress":
        """Parse the canonical ``AA:BB:CC:DD:EE:FF`` form."""
        parts = text.split(":")
        if len(parts) != 6 or not all(len(p) == 2 for p in parts):
            raise CodecError(f"malformed BD_ADDR string: {text!r}")
        try:
            raw = bytes(int(p, 16) for p in parts)
        except ValueError:
            raise CodecError(f"malformed BD_ADDR string: {text!r}") from None
        return cls(int.from_bytes(raw, "big"), random)

    @classmethod
    def generate(cls, rng: Optional[np.random.Generator] = None,
                 random: bool = True) -> "BdAddress":
        """Draw a random address (static-random style: top two bits set)."""
        gen = rng if rng is not None else np.random.default_rng()
        value = int(gen.integers(0, 1 << 48, dtype=np.uint64))
        if random:
            value |= 0b11 << 46
        return cls(value, random)

    def to_bytes(self) -> bytes:
        """Encode as 6 little-endian bytes (on-air order)."""
        return self.value.to_bytes(6, "little")

    def __str__(self) -> str:
        raw = self.value.to_bytes(6, "big")
        return ":".join(f"{b:02X}" for b in raw)
