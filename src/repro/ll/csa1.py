"""Channel Selection Algorithm #1.

CSA#1 hops by modular addition: ``unmapped = (last + hopIncrement) mod 37``.
If the unmapped channel is marked *unused* in the channel map, it is
remapped onto the table of used channels by ``unmapped mod numUsed``.

The paper's attack assumes CSA#1 (§III-B3), the most common algorithm; the
sniffer predicts the hop sequence from the CONNECT_REQ parameters (or infers
them when the CONNECT_REQ was missed).
"""

from __future__ import annotations

from repro.errors import LinkLayerError

NUM_DATA_CHANNELS = 37


def channel_map_to_used(channel_map: int) -> list[int]:
    """Expand a 37-bit channel-map bitmask into the sorted used-channel list."""
    if not 0 <= channel_map < 1 << NUM_DATA_CHANNELS:
        raise LinkLayerError(f"channel map out of range: {channel_map:#x}")
    used = [ch for ch in range(NUM_DATA_CHANNELS) if (channel_map >> ch) & 1]
    if not used:
        raise LinkLayerError("channel map has no used channels")
    return used


class Csa1:
    """Stateful CSA#1 hop sequence generator.

    Args:
        hop_increment: 5-bit hop increment from CONNECT_REQ (5-16 valid).
        channel_map: 37-bit bitmask of used data channels.
        last_unmapped: starting point; 0 for a fresh connection.

    Example:
        >>> csa = Csa1(hop_increment=7, channel_map=(1 << 37) - 1)
        >>> csa.next_channel()
        7
        >>> csa.next_channel()
        14
    """

    def __init__(self, hop_increment: int, channel_map: int = (1 << 37) - 1,
                 last_unmapped: int = 0):
        if not 5 <= hop_increment <= 16:
            raise LinkLayerError(
                f"hop increment must be 5-16, got {hop_increment}"
            )
        self.hop_increment = hop_increment
        self._last_unmapped = last_unmapped % NUM_DATA_CHANNELS
        self.set_channel_map(channel_map)

    @property
    def last_unmapped(self) -> int:
        """The unmapped channel of the most recent hop."""
        return self._last_unmapped

    def set_channel_map(self, channel_map: int) -> None:
        """Apply a (possibly updated) channel map."""
        self._channel_map = channel_map
        self._used = channel_map_to_used(channel_map)

    @property
    def channel_map(self) -> int:
        """Current 37-bit channel map."""
        return self._channel_map

    def next_channel(self) -> int:
        """Advance one connection event and return the mapped channel."""
        self._last_unmapped = (
            self._last_unmapped + self.hop_increment
        ) % NUM_DATA_CHANNELS
        return self._map(self._last_unmapped)

    def peek_channel(self, events_ahead: int = 1) -> int:
        """Channel that will be used ``events_ahead`` events from now."""
        if events_ahead < 1:
            raise LinkLayerError(f"events_ahead must be >= 1: {events_ahead}")
        unmapped = (
            self._last_unmapped + events_ahead * self.hop_increment
        ) % NUM_DATA_CHANNELS
        return self._map(unmapped)

    def _map(self, unmapped: int) -> int:
        if (self._channel_map >> unmapped) & 1:
            return unmapped
        return self._used[unmapped % len(self._used)]

    def clone(self) -> "Csa1":
        """Independent copy with identical state (used by the sniffer)."""
        return Csa1(self.hop_increment, self._channel_map, self._last_unmapped)
