"""Channel Selection Algorithm #2 (BLE 5.0).

CSA#2 derives each event's channel from the 16-bit connection event counter
and a *channel identifier* computed from the access address, through a
cascade of three 16-bit permutation/MAM (multiply-add-modulo) rounds.  It
is stateless in the event counter, which is why Cauquil's DEF CON 27 work
("Defeating Bluetooth Low Energy 5 PRNG") could still predict it — the
generator is a PRNG keyed only by public values.

Implemented per Core Spec v5.x Vol 6 Part B §4.5.8.3.
"""

from __future__ import annotations

from repro.errors import LinkLayerError
from repro.ll.csa1 import NUM_DATA_CHANNELS, channel_map_to_used


def _perm(v: int) -> int:
    """Bit-reverse each of the two bytes of a 16-bit value."""
    out = 0
    for byte_idx in range(2):
        byte = (v >> (8 * byte_idx)) & 0xFF
        rev = 0
        for bit in range(8):
            rev |= ((byte >> bit) & 1) << (7 - bit)
        out |= rev << (8 * byte_idx)
    return out


def _mam(a: int, b: int) -> int:
    """Multiply-add-modulo round: ``(a * 17 + b) mod 2^16``."""
    return (a * 17 + b) & 0xFFFF


def channel_identifier(access_address: int) -> int:
    """The 16-bit channel identifier: AA's halves XORed together."""
    if not 0 <= access_address < 1 << 32:
        raise LinkLayerError(f"access address out of range: {access_address:#x}")
    return ((access_address >> 16) ^ (access_address & 0xFFFF)) & 0xFFFF


def _prn_e(event_counter: int, ch_id: int) -> int:
    """The pseudo-random number prn_e for a given event counter."""
    prn = event_counter ^ ch_id
    for _ in range(3):
        prn = _mam(_perm(prn), ch_id)
    return prn ^ ch_id


class Csa2:
    """Stateless CSA#2 channel computation.

    Args:
        access_address: connection access address (keys the PRNG).
        channel_map: 37-bit used-channel bitmask.

    Example:
        >>> csa = Csa2(0x8E89BED6 ^ 0x5A5A5A5A, (1 << 37) - 1)
        >>> 0 <= csa.channel_for_event(0) < 37
        True
    """

    def __init__(self, access_address: int, channel_map: int = (1 << 37) - 1):
        self._ch_id = channel_identifier(access_address)
        self.set_channel_map(channel_map)

    def set_channel_map(self, channel_map: int) -> None:
        """Apply a (possibly updated) channel map."""
        self._channel_map = channel_map
        self._used = channel_map_to_used(channel_map)

    @property
    def channel_map(self) -> int:
        """Current 37-bit channel map."""
        return self._channel_map

    def channel_for_event(self, event_counter: int) -> int:
        """Data channel used at the given connection event counter."""
        if not 0 <= event_counter < 1 << 16:
            raise LinkLayerError(f"event counter out of range: {event_counter}")
        prn_e = _prn_e(event_counter, self._ch_id)
        unmapped = prn_e % NUM_DATA_CHANNELS
        if (self._channel_map >> unmapped) & 1:
            return unmapped
        remap_index = (len(self._used) * prn_e) >> 16
        return self._used[remap_index]
