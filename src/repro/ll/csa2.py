"""Channel Selection Algorithm #2 (BLE 5.0).

CSA#2 derives each event's channel from the 16-bit connection event counter
and a *channel identifier* computed from the access address, through a
cascade of three 16-bit permutation/MAM (multiply-add-modulo) rounds.  It
is stateless in the event counter, which is why Cauquil's DEF CON 27 work
("Defeating Bluetooth Low Energy 5 PRNG") could still predict it — the
generator is a PRNG keyed only by public values.

Implemented per Core Spec v5.x Vol 6 Part B §4.5.8.3.

Two execution strategies coexist:

* the **fast path** (default) replaces the bit-reversal permutation with a
  256-entry table and memoises the event→channel schedule per
  ``(channel identifier, channel map)`` in 128-event blocks, shared
  module-wide — Master, Slave and sniffer of one connection all read the
  same schedule, so ``channel_for_event`` is an O(1) lookup;
* the **reference path** (:meth:`Csa2.channel_for_event_reference`)
  recomputes the three permutation/MAM rounds bit by bit, retained for
  differential testing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.errors import LinkLayerError
from repro.kernels.tables import REV8
from repro.ll.csa1 import NUM_DATA_CHANNELS, channel_map_to_used


def _perm_reference(v: int) -> int:
    """Bit-reverse each of the two bytes of a 16-bit value (bit-level)."""
    out = 0
    for byte_idx in range(2):
        byte = (v >> (8 * byte_idx)) & 0xFF
        rev = 0
        for bit in range(8):
            rev |= ((byte >> bit) & 1) << (7 - bit)
        out |= rev << (8 * byte_idx)
    return out


def _perm(v: int) -> int:
    """Bit-reverse each of the two bytes of a 16-bit value (table-driven)."""
    return REV8[v & 0xFF] | (REV8[v >> 8] << 8)


def _mam(a: int, b: int) -> int:
    """Multiply-add-modulo round: ``(a * 17 + b) mod 2^16``."""
    return (a * 17 + b) & 0xFFFF


def channel_identifier(access_address: int) -> int:
    """The 16-bit channel identifier: AA's halves XORed together."""
    if not 0 <= access_address < 1 << 32:
        raise LinkLayerError(f"access address out of range: {access_address:#x}")
    return ((access_address >> 16) ^ (access_address & 0xFFFF)) & 0xFFFF


def _prn_e(event_counter: int, ch_id: int) -> int:
    """The pseudo-random number prn_e for a given event counter."""
    prn = event_counter ^ ch_id
    for _ in range(3):
        prn = _mam(_perm(prn), ch_id)
    return prn ^ ch_id


def _prn_e_reference(event_counter: int, ch_id: int) -> int:
    """Bit-level :func:`_prn_e`, retained for differential testing."""
    prn = event_counter ^ ch_id
    for _ in range(3):
        prn = _mam(_perm_reference(prn), ch_id)
    return prn ^ ch_id


# ----------------------------------------------------------------------
# Module-wide schedule cache
# ----------------------------------------------------------------------

#: Events per cached schedule block (event counters are 16-bit, so a fully
#: populated schedule is 512 blocks).
_BLOCK_BITS = 7
_BLOCK = 1 << _BLOCK_BITS

#: Distinct ``(channel identifier, channel map)`` schedules kept; evicted
#: least-recently-created first.  64 covers many concurrent simulated
#: connections while bounding memory at ~64 * 64 KiB of small ints.
_MAX_SCHEDULES = 64

_ScheduleBlocks = Dict[int, List[int]]
_schedule_cache: "OrderedDict[Tuple[int, int], _ScheduleBlocks]" = OrderedDict()

#: Module switch flipped by :func:`repro.kernels.reference_kernels`.
_fast_enabled = True


def _schedule_blocks(ch_id: int, channel_map: int) -> _ScheduleBlocks:
    """The shared block store for one ``(ch_id, channel_map)`` schedule."""
    key = (ch_id, channel_map)
    blocks = _schedule_cache.get(key)
    if blocks is None:
        while len(_schedule_cache) >= _MAX_SCHEDULES:
            _schedule_cache.popitem(last=False)
        blocks = _schedule_cache[key] = {}
    else:
        _schedule_cache.move_to_end(key)
    return blocks


def clear_schedule_cache() -> None:
    """Drop every memoised CSA#2 schedule (benchmarks and tests)."""
    _schedule_cache.clear()


class Csa2:
    """Stateless CSA#2 channel computation.

    Args:
        access_address: connection access address (keys the PRNG).
        channel_map: 37-bit used-channel bitmask.

    Example:
        >>> csa = Csa2(0x8E89BED6 ^ 0x5A5A5A5A, (1 << 37) - 1)
        >>> 0 <= csa.channel_for_event(0) < 37
        True
    """

    def __init__(self, access_address: int, channel_map: int = (1 << 37) - 1):
        self._ch_id = channel_identifier(access_address)
        self.set_channel_map(channel_map)

    def set_channel_map(self, channel_map: int) -> None:
        """Apply a (possibly updated) channel map."""
        self._channel_map = channel_map
        self._used = channel_map_to_used(channel_map)
        self._blocks = _schedule_blocks(self._ch_id, channel_map)

    @property
    def channel_map(self) -> int:
        """Current 37-bit channel map."""
        return self._channel_map

    def channel_for_event(self, event_counter: int) -> int:
        """Data channel used at the given connection event counter."""
        if not 0 <= event_counter < 1 << 16:
            raise LinkLayerError(f"event counter out of range: {event_counter}")
        if not _fast_enabled:
            return self._channel_for_prn(
                _prn_e_reference(event_counter, self._ch_id))
        block = self._blocks.get(event_counter >> _BLOCK_BITS)
        if block is None:
            block = self._fill_block(event_counter >> _BLOCK_BITS)
        return block[event_counter & (_BLOCK - 1)]

    def channel_for_event_reference(self, event_counter: int) -> int:
        """Bit-level, uncached :meth:`channel_for_event` (differential tests)."""
        if not 0 <= event_counter < 1 << 16:
            raise LinkLayerError(f"event counter out of range: {event_counter}")
        return self._channel_for_prn(_prn_e_reference(event_counter, self._ch_id))

    def _channel_for_prn(self, prn_e: int) -> int:
        unmapped = prn_e % NUM_DATA_CHANNELS
        if (self._channel_map >> unmapped) & 1:
            return unmapped
        remap_index = (len(self._used) * prn_e) >> 16
        return self._used[remap_index]

    def _fill_block(self, block_index: int) -> List[int]:
        """Compute one 128-event schedule block with the table kernels."""
        ch_id = self._ch_id
        channel_map = self._channel_map
        used = self._used
        n_used = len(used)
        rev = REV8
        base = block_index << _BLOCK_BITS
        block = []
        append = block.append
        for event in range(base, base + _BLOCK):
            prn = event ^ ch_id
            for _ in range(3):
                prn = ((rev[prn & 0xFF] | (rev[prn >> 8] << 8)) * 17
                       + ch_id) & 0xFFFF
            prn ^= ch_id
            unmapped = prn % NUM_DATA_CHANNELS
            if (channel_map >> unmapped) & 1:
                append(unmapped)
            else:
                append(used[(n_used * prn) >> 16])
        self._blocks[block_index] = block
        return block
