"""Access-address generation and validation.

Every frame of a connection carries the 32-bit access address chosen by the
initiator in CONNECT_REQ.  The Core Specification constrains valid
addresses so receivers can correlate reliably; sniffers exploit the same
rules to spot candidate addresses of connections whose setup they missed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import LinkLayerError

#: Fixed access address of all advertising-channel traffic.
ADVERTISING_ACCESS_ADDRESS = 0x8E89BED6


def _bits(value: int) -> list[int]:
    return [(value >> i) & 1 for i in range(32)]


def is_valid_access_address(aa: int) -> bool:
    """Check the Core Specification constraints for a data-channel AA.

    Rules (Vol 6 Part B §2.1.2):
      * not the advertising access address, nor one bit away from it;
      * no more than six consecutive zeros or ones;
      * not all four bytes equal;
      * the four most significant bits must not all be the same as each
        other's neighbour transitions — specifically, at least two
        transitions in the six most significant bits.
    """
    if not 0 <= aa < 1 << 32:
        return False
    if aa == ADVERTISING_ACCESS_ADDRESS:
        return False
    if bin(aa ^ ADVERTISING_ACCESS_ADDRESS).count("1") == 1:
        return False
    bits = _bits(aa)
    run = 1
    for i in range(1, 32):
        run = run + 1 if bits[i] == bits[i - 1] else 1
        if run > 6:
            return False
    b = aa.to_bytes(4, "little")
    if b[0] == b[1] == b[2] == b[3]:
        return False
    # At least two transitions in the six most significant bits.
    msb_bits = bits[26:32]
    transitions = sum(
        1 for i in range(1, len(msb_bits)) if msb_bits[i] != msb_bits[i - 1]
    )
    if transitions < 2:
        return False
    return True


def generate_access_address(rng: Optional[np.random.Generator] = None,
                            max_tries: int = 1000) -> int:
    """Draw a random access address satisfying the specification rules."""
    gen = rng if rng is not None else np.random.default_rng()
    for _ in range(max_tries):
        aa = int(gen.integers(0, 1 << 32, dtype=np.uint64))
        if is_valid_access_address(aa):
            return aa
    raise LinkLayerError("could not generate a valid access address")
