"""The Peripheral/Slave Link Layer.

Implements advertising, connection establishment as the Slave, and — most
importantly for InjectaBLE — the *receive window* state machine: at every
connection event the Slave opens a window widened by ``w`` (paper eq. 4/5)
around the predicted anchor point and accepts the **first** frame that
arrives in it with the connection's access address.  That first-frame rule
is the race the attacker wins.

Simplifications relative to a full stack (documented in DESIGN.md):

* one Master↔Slave exchange per connection event (the MD bit is decoded
  but multi-PDU events are not chained);
* slave latency is honoured in the widening arithmetic but the Slave
  listens at every event (latency 0 behaviour), as in the paper's setups;
* the encryption-setup three-way handshake is collapsed to
  ENC_REQ → ENC_RSP with both sides enabling CCM at the exchange's end.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.crypto.pairing import session_key_from_skd
from repro.crypto.session import LinkEncryption
from repro.errors import ConnectionStateError
from repro.ll.connection import ConnectionParams, ConnectionState, Role
from repro.ll.device import LinkLayerDevice
from repro.ll.pdu.address import BdAddress
from repro.ll.pdu.advertising import (
    AdvInd,
    ConnectReq,
    ScanReq,
    ScanRsp,
    decode_advertising_pdu,
)
from repro.ll.access_address import ADVERTISING_ACCESS_ADDRESS
from repro.ll.connection import phy_mode_from_mask
from repro.ll.pdu.control import (
    ChannelMapInd,
    LengthReq,
    LengthRsp,
    PhyReq,
    PhyRsp,
    PhyUpdateInd,
    ClockAccuracyReq,
    ClockAccuracyRsp,
    ConnectionUpdateInd,
    ControlPdu,
    EncReq,
    EncRsp,
    FeatureReq,
    FeatureRsp,
    PingReq,
    PingRsp,
    TerminateInd,
    UnknownRsp,
    VersionInd,
    decode_control_pdu,
)
from repro.ll.pdu.data import DataPdu
from repro.ll.pdu.frame import compute_advertising_crc, verify_crc
from repro.ll.timing import transmit_window, window_widening_us
from repro.phy.crc import ADVERTISING_CRC_INIT
from repro.phy.signal import RadioFrame
from repro.sim.clock import ppm_to_sca_field
from repro.sim.events import Event
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.utils.units import T_IFS_US


class SlaveState(enum.Enum):
    """Lifecycle states of the Peripheral."""

    IDLE = "idle"
    ADVERTISING = "advertising"
    CONNECTED = "connected"


#: How long the advertiser listens after each ADV_IND for a request
#: (covers T_IFS plus a CONNECT_REQ's 352 µs air time with margin).
_ADV_RX_WINDOW_US = T_IFS_US + 420.0


class SlaveLinkLayer(LinkLayerDevice):
    """A Peripheral: advertiser + connection Slave.

    Args:
        sim, medium, name, address: see :class:`LinkLayerDevice`.
        adv_interval_ms: advertising interval (plus 0-10 ms random delay).
        adv_data: AD payload broadcast in ADV_IND.
        scan_data: payload returned in SCAN_RSP.
        ltk: long-term key enabling the encryption-setup procedure.
        readvertise_on_disconnect: restart advertising when a connection
            ends (real IoT devices usually do).
        use_csa2: accept CSA#2 connections (flag mirrored from CONNECT_REQ
            in a real stack; here a configuration choice).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        address: BdAddress,
        adv_interval_ms: float = 100.0,
        adv_data: bytes = b"",
        scan_data: bytes = b"",
        ltk: Optional[bytes] = None,
        readvertise_on_disconnect: bool = False,
        use_csa2: bool = False,
        sca_ppm: float = 50.0,
        tx_power_dbm: float = 0.0,
        widening_scale: float = 1.0,
    ):
        super().__init__(sim, medium, name, address, sca_ppm=sca_ppm,
                         tx_power_dbm=tx_power_dbm)
        #: Mitigation knob (§VIII): scale factor on the computed window
        #: widening; 1.0 is the spec behaviour, smaller values shrink the
        #: injection opportunity at the cost of robustness to drift.
        self.widening_scale = widening_scale
        self.adv_interval_ms = adv_interval_ms
        self.adv_data = adv_data
        self.scan_data = scan_data
        self.ltk = ltk
        self.readvertise_on_disconnect = readvertise_on_disconnect
        self.use_csa2 = use_csa2
        self.state = SlaveState.IDLE
        self._adv_rng: np.random.Generator = sim.streams.get(f"adv-{name}")
        self._adv_channels: list[int] = []
        self._pending_events: list[Event] = []
        # Connection-event bookkeeping.
        self._anchor_local: Optional[float] = None
        self._events_since_anchor = 1
        self._window_close: Optional[Event] = None
        self._terminate_after_response: Optional[str] = None
        self._pending_encryption: Optional[LinkEncryption] = None

    # ------------------------------------------------------------------
    # Advertising
    # ------------------------------------------------------------------

    def start_advertising(self) -> None:
        """Begin the advertising cycle on channels 37, 38, 39."""
        if self.state is SlaveState.CONNECTED:
            raise ConnectionStateError(f"{self.name}: connected, cannot advertise")
        self.state = SlaveState.ADVERTISING
        self._schedule(self.sim.now, self._advertising_event, "adv-start")

    def stop_advertising(self) -> None:
        """Stop advertising (pending radio operations are cancelled)."""
        if self.state is SlaveState.ADVERTISING:
            self.state = SlaveState.IDLE
            self._cancel_pending()
            self.radio.stop_listening()

    def _schedule(self, time_us: float, handler, label: str) -> Event:
        event = self.sim.schedule_at(max(time_us, self.sim.now), handler, label)
        self._pending_events.append(event)
        if len(self._pending_events) > 64:
            # Amortised compaction: fired and cancelled handles are
            # inert (cancel() on them is a no-op), so dropping them
            # lazily keeps this O(1) per call instead of O(n).
            self._pending_events = [e for e in self._pending_events if e.pending]
        return event

    def _cancel_pending(self) -> None:
        for event in self._pending_events:
            event.cancel()
        self._pending_events.clear()

    def _advertising_event(self) -> None:
        if self.state is not SlaveState.ADVERTISING:
            return
        self._adv_channels = [37, 38, 39]
        self._advertise_next_channel()

    def _advertise_next_channel(self) -> None:
        if self.state is not SlaveState.ADVERTISING:
            return
        if not self._adv_channels:
            # Cycle done: schedule the next one with the spec's 0-10 ms
            # pseudo-random advDelay.
            delay_ms = self.adv_interval_ms + float(self._adv_rng.uniform(0.0, 10.0))
            self._schedule(self.sim.now + delay_ms * 1000.0,
                           self._advertising_event, "adv-cycle")
            return
        if self.radio.is_transmitting(self.sim.now):
            # A previous frame (e.g. the terminate acknowledgement) is
            # still on air; the radio is half duplex.
            self._schedule(self.sim.now + 200.0, self._advertise_next_channel,
                           "adv-defer")
            return
        channel = self._adv_channels.pop(0)
        pdu = AdvInd(self.address, self.adv_data).to_bytes()
        crc = compute_advertising_crc(pdu)
        frame = self.radio.transmit(ADVERTISING_ACCESS_ADDRESS, pdu, crc, channel)
        self._schedule(frame.end_us + 1.0,
                       lambda ch=channel: self._listen_after_adv(ch),
                       "adv-listen")

    def _listen_after_adv(self, channel: int) -> None:
        if self.state is not SlaveState.ADVERTISING:
            return
        self.radio.listen(channel)
        self._schedule(self.sim.now + _ADV_RX_WINDOW_US,
                       self._adv_listen_timeout, "adv-listen-timeout")

    def _adv_listen_timeout(self) -> None:
        if self.state is not SlaveState.ADVERTISING:
            return
        lock_end = self.medium.lock_end_of(self.radio)
        if lock_end is not None:
            self._schedule(lock_end + 2.0, self._adv_listen_timeout,
                           "adv-listen-extend")
            return
        self.radio.stop_listening()
        self._advertise_next_channel()

    def _on_advertising_frame(self, frame: RadioFrame) -> None:
        if frame.access_address != ADVERTISING_ACCESS_ADDRESS:
            return
        if not verify_crc(frame, ADVERTISING_CRC_INIT):
            return
        try:
            pdu = decode_advertising_pdu(frame.pdu)
        except Exception:
            return
        if isinstance(pdu, ScanReq) and pdu.adv_addr.value == self.address.value:
            rsp = ScanRsp(self.address, self.scan_data).to_bytes()
            crc = compute_advertising_crc(rsp)
            self._schedule(
                frame.end_us + T_IFS_US,
                lambda: self._tx_adv_response(rsp, crc, frame.channel),
                "scan-rsp",
            )
        elif isinstance(pdu, ConnectReq) and pdu.adv_addr.value == self.address.value:
            self._enter_connection(pdu, frame)

    def _tx_adv_response(self, pdu: bytes, crc: int, channel: int) -> None:
        if self.state is not SlaveState.ADVERTISING:
            return
        self.radio.stop_listening()
        self.radio.transmit(ADVERTISING_ACCESS_ADDRESS, pdu, crc, channel)
        self._schedule(self.sim.now + 400.0, self._advertise_next_channel,
                       "adv-continue")

    # ------------------------------------------------------------------
    # Connection establishment (Slave side)
    # ------------------------------------------------------------------

    def _enter_connection(self, req: ConnectReq, frame: RadioFrame) -> None:
        self._cancel_pending()
        self.radio.stop_listening()
        params = ConnectionParams.from_ll_data(req.ll_data, use_csa2=self.use_csa2)
        self.peer_address = req.init_addr
        self.conn = ConnectionState(params, Role.SLAVE,
                                    created_local_us=self.local_now)
        self.state = SlaveState.CONNECTED
        self._anchor_local = None
        self._events_since_anchor = 1
        self._terminate_after_response = None
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "conn-created",
                                  aa=params.access_address, interval=params.interval)
        self._notify_connected()
        # Transmit window, paper eq. 1, measured from the CONNECT_REQ end.
        local_ref = self.local_now
        window = transmit_window(local_ref, params.win_offset, params.win_size)
        w = self.widening_scale * window_widening_us(
            params.master_sca_ppm, self.clock.sca_ppm,
            window.start_us - local_ref,
        )
        channel = self.conn.channel_for_next_event()
        self._open_window(window.start_us - w, window.end_us + w, channel)

    # ------------------------------------------------------------------
    # Connection events
    # ------------------------------------------------------------------

    def _open_window(self, open_local: float, close_local: float,
                     channel: int) -> None:
        self.schedule_local(open_local, lambda: self._window_open(channel),
                            f"{self.name}-window-open")
        self._window_close = self.schedule_local(
            close_local, self._window_timeout, f"{self.name}-window-close"
        )
        self._pending_events.append(self._window_close)

    def _window_open(self, channel: int) -> None:
        if not self.is_connected:
            return
        self.radio.listen(channel)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "window-open",
                                  channel=channel,
                                  event_count=self.conn.event_count)

    def _window_timeout(self) -> None:
        if not self.is_connected:
            return
        lock_end = self.medium.lock_end_of(self.radio)
        if lock_end is not None:
            # Keep demodulating the frame we are synchronised to.
            self._window_close = self.sim.schedule_at(
                lock_end + 2.0, self._window_timeout, f"{self.name}-window-extend"
            )
            self._pending_events.append(self._window_close)
            return
        self.radio.stop_listening()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "event-missed",
                                  event_count=self.conn.event_count)
        self._close_event(received=False)

    def _close_event(self, received: bool) -> None:
        """End the current connection event and set up the next one."""
        conn = self.conn
        if conn is None or conn.terminated:
            return
        if conn.supervision_expired(self.local_now):
            self.disconnect("supervision timeout")
            self._maybe_readvertise()
            return
        conn.event_count = (conn.event_count + 1) & 0xFFFF
        self._events_since_anchor += 1
        self._begin_event()

    def _begin_event(self) -> None:
        """Prepare the receive window of the (already incremented) event."""
        conn = self._require_conn()
        due_map = conn.take_due_channel_map()
        if due_map is not None:
            conn.apply_channel_map(due_map)
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name, "channel-map-applied",
                                      event_count=conn.event_count)
        due_phy = conn.take_due_phy()
        if due_phy is not None:
            self.phy = phy_mode_from_mask(due_phy.m_to_s_phy)
            self.radio.rx_phy = self.phy
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name, "phy-applied",
                                      event_count=conn.event_count,
                                      phy=self.phy.value)
        channel = conn.channel_for_next_event()
        anchor = self._anchor_local
        if anchor is None:
            # Never synchronised: extremely defensive fallback, supervision
            # will kill the connection shortly.
            anchor = self.local_now
        interval_us = conn.params.interval_us
        predicted = anchor + self._events_since_anchor * interval_us
        due_update = conn.take_due_update()
        if due_update is not None:
            # Connection update instant (paper Fig. 2): a fresh transmit
            # window computed against the old-schedule predicted anchor.
            window = transmit_window(predicted, due_update.win_offset,
                                     due_update.win_size)
            w = self.widening_scale * window_widening_us(
                conn.params.master_sca_ppm, self.clock.sca_ppm,
                window.start_us - anchor,
            )
            conn.apply_update(due_update)
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name, "conn-update-applied",
                                      event_count=conn.event_count,
                                      interval=conn.params.interval)
            # Re-base the anchor prediction on the window start so the
            # following events hop on the new interval from there.
            self._anchor_local = window.start_us
            self._events_since_anchor = 0
            self._open_window(window.start_us - w, window.end_us + w, channel)
            return
        w = self.widening_scale * window_widening_us(
            conn.params.master_sca_ppm, self.clock.sca_ppm, predicted - anchor
        )
        self._open_window(predicted - w, predicted + w, channel)

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------

    def _on_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        if self.state is SlaveState.ADVERTISING:
            self._on_advertising_frame(frame)
        elif self.state is SlaveState.CONNECTED and self.is_connected:
            self._on_connection_frame(frame)

    def _on_connection_frame(self, frame: RadioFrame) -> None:
        conn = self._require_conn()
        if frame.access_address != conn.params.access_address:
            return
        if self._window_close is not None:
            self._window_close.cancel()
        self.radio.stop_listening()
        # Any AA-matching frame re-anchors the event timing, CRC-valid or
        # not (this is what makes the injected frame the new anchor point).
        self._anchor_local = self.clock.local_from_true(frame.start_us)
        self._events_since_anchor = 0
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "anchor",
                                  event_count=conn.event_count,
                                  anchor_us=frame.start_us,
                                  frame_id=frame.frame_id)
        crc_ok = verify_crc(frame, conn.params.crc_init)
        if crc_ok:
            pdu = DataPdu.from_bytes(frame.pdu)
            is_new, _acked = conn.on_received_bits(pdu.header.sn, pdu.header.nesn)
            conn.note_valid_rx(self.local_now)
            if is_new and len(pdu.payload) > 0:
                decrypted = self.decrypt_if_needed(pdu)
                if decrypted is None:
                    return  # MIC failure tore the connection down
                self._handle_payload(decrypted)
        else:
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name, "crc-error",
                                      event_count=conn.event_count,
                                      frame_id=frame.frame_id)
        if self.conn is None or self.conn.terminated:
            return
        # Respond T_IFS after the received frame's end, whatever the CRC
        # said (the flow-control bits communicate the failure).
        self.sim.schedule_at(
            frame.end_us + T_IFS_US + max(self.clock.sample_jitter(), -4.0),
            self._send_response, f"{self.name}-response",
        )

    def _handle_payload(self, pdu: DataPdu) -> None:
        if pdu.is_control:
            self._handle_control(decode_control_pdu(pdu.payload))
        else:
            self._deliver_data(pdu.payload)

    def _handle_control(self, control: ControlPdu) -> None:
        conn = self._require_conn()
        if self.on_control is not None:
            self.on_control(control)
        if isinstance(control, TerminateInd):
            self._terminate_after_response = (
                f"LL_TERMINATE_IND (0x{control.error_code:02X})"
            )
        elif isinstance(control, ConnectionUpdateInd):
            try:
                conn.schedule_update(control)
            except ConnectionStateError:
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, self.name,
                                          "update-rejected")
        elif isinstance(control, ChannelMapInd):
            try:
                conn.schedule_channel_map(control)
            except ConnectionStateError:
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, self.name,
                                          "chmap-rejected")
        elif isinstance(control, EncReq):
            self._handle_enc_req(control)
        elif isinstance(control, PhyReq):
            self.send_control(PhyRsp())
        elif isinstance(control, PhyUpdateInd):
            try:
                conn.schedule_phy(control)
            except ConnectionStateError:
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, self.name,
                                          "phy-update-rejected")
        elif isinstance(control, LengthReq):
            self.send_control(LengthRsp())
        elif isinstance(control, FeatureReq):
            self.send_control(FeatureRsp(features=0))
        elif isinstance(control, PingReq):
            self.send_control(PingRsp())
        elif isinstance(control, VersionInd):
            self.send_control(VersionInd())
        elif isinstance(control, ClockAccuracyReq):
            self.send_control(
                ClockAccuracyRsp(sca=ppm_to_sca_field(self.clock.sca_ppm))
            )
        elif isinstance(control, (EncRsp, ClockAccuracyRsp, FeatureRsp,
                                  PingRsp, UnknownRsp)):
            pass  # responses to procedures we initiated; nothing to do
        else:
            self.send_control(UnknownRsp(unknown_type=int(control.OPCODE)))

    def _handle_enc_req(self, req: EncReq) -> None:
        if self.ltk is None:
            self.send_control(UnknownRsp(unknown_type=int(req.OPCODE)))
            return
        rng = self.sim.streams.get(f"enc-{self.name}")
        skd_s = int(rng.integers(0, 1 << 63))
        iv_s = int(rng.integers(0, 1 << 32))
        session_key = session_key_from_skd(self.ltk, req.skd_m, skd_s)
        self._pending_encryption = LinkEncryption(
            session_key, req.iv_m, iv_s, is_master=False
        )
        self.send_control(EncRsp(skd_s=skd_s, iv_s=iv_s))

    # ------------------------------------------------------------------
    # Response transmission
    # ------------------------------------------------------------------

    def _send_response(self) -> None:
        if not self.is_connected:
            return
        conn = self._require_conn()
        assert conn.current_channel is not None
        pdu = self.next_pdu_to_send()
        self.transmit_pdu(pdu, conn.current_channel)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "slave-response",
                                  sn=pdu.header.sn, nesn=pdu.header.nesn,
                                  event_count=conn.event_count)
        if (self._pending_encryption is not None and pdu.is_control
                and len(pdu.payload) > 0 and self.encryption is None):
            control = decode_control_pdu(pdu.payload)
            if isinstance(control, EncRsp):
                self.encryption = self._pending_encryption
                self._pending_encryption = None
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, self.name,
                                          "encryption-enabled")
        if self._terminate_after_response is not None:
            reason = self._terminate_after_response
            self._terminate_after_response = None
            self.disconnect(reason)
            self._maybe_readvertise()
            return
        self._close_event(received=True)

    def _maybe_readvertise(self) -> None:
        if self.readvertise_on_disconnect and self.state is not SlaveState.ADVERTISING:
            self.state = SlaveState.IDLE
            self.start_advertising()

    def disconnect(self, reason: str) -> None:
        """Tear down and fall back to idle (or advertising)."""
        self._cancel_pending()
        self.state = SlaveState.IDLE
        super().disconnect(reason)
