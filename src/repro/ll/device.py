"""Common Link-Layer device machinery shared by Master and Slave roles.

A :class:`LinkLayerDevice` owns a transceiver and a drifting sleep clock,
provides local-clock scheduling (so every timing decision a real stack
makes on its own crystal is made on the simulated one), the transmit queue
with the 1-bit ARQ retransmission rule, and the optional encryption hook.
Role-specific event scheduling lives in :mod:`repro.ll.slave` and
:mod:`repro.ll.master`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.crypto.session import LinkEncryption, MicError
from repro.errors import ConnectionStateError
from repro.ll.connection import ConnectionState
from repro.ll.pdu.address import BdAddress
from repro.ll.pdu.control import ControlPdu
from repro.ll.pdu.data import LLID, DataPdu
from repro.ll.pdu.frame import compute_crc
from repro.phy.modulation import PhyMode
from repro.phy.signal import RadioFrame
from repro.sim.clock import SleepClock
from repro.sim.events import Event
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator


class LinkLayerDevice:
    """Base class for simulated BLE Link-Layer devices.

    Args:
        sim: owning simulator.
        medium: shared radio medium; the device name must be placed in the
            medium's topology before any transmission.
        name: device name (also the topology key).
        address: the device's BD_ADDR.
        sca_ppm: declared sleep-clock accuracy; the actual rate error is
            drawn within ±sca_ppm.
        tx_power_dbm: transmit power.
        phy: physical layer for all traffic (LE 1M by default, as in the
            paper's experiments).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        address: BdAddress,
        sca_ppm: float = 50.0,
        tx_power_dbm: float = 0.0,
        phy: PhyMode = PhyMode.LE_1M,
    ):
        self.sim = sim
        self.medium = medium
        self.name = name
        self.address = address
        self.phy = phy
        self.clock = SleepClock(
            sca_ppm, rng=sim.streams.get(f"clock-{name}"), jitter_us=1.0
        )
        self.radio = self._make_radio(tx_power_dbm)
        self.conn: Optional[ConnectionState] = None
        self.peer_address: Optional[BdAddress] = None
        self.encryption: Optional[LinkEncryption] = None
        self._tx_queue: deque[DataPdu] = deque()
        # Host-facing callbacks.
        self.on_connected: Optional[Callable[[], None]] = None
        self.on_disconnected: Optional[Callable[[str], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_control: Optional[Callable[[ControlPdu], None]] = None

    def _make_radio(self, tx_power_dbm: float):
        from repro.sim.transceiver import Transceiver

        radio = Transceiver(
            self.sim, self.medium, self.name, clock=self.clock,
            tx_power_dbm=tx_power_dbm,
        )
        radio.on_frame = self._on_frame
        return radio

    # ------------------------------------------------------------------
    # Local-clock scheduling
    # ------------------------------------------------------------------

    @property
    def local_now(self) -> float:
        """This device's clock reading at the current true time."""
        return self.clock.local_from_true(self.sim.now)

    def schedule_local(
        self, local_time_us: float, handler: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``handler`` at a *local-clock* time, with jitter.

        The conversion to true time is where clock drift becomes physically
        observable: two devices scheduling "the same" local instant wake at
        different true times.
        """
        true_time = self.clock.true_from_local(local_time_us)
        true_time += self.clock.sample_jitter()
        true_time = max(true_time, self.sim.now)
        return self.sim.schedule_at(true_time, handler, label or f"{self.name}-local")

    # ------------------------------------------------------------------
    # Transmit queue / ARQ
    # ------------------------------------------------------------------

    def send_data(self, payload: bytes) -> None:
        """Queue an upper-layer (L2CAP) payload for transmission."""
        if len(payload) == 0:
            raise ConnectionStateError("refusing to queue an empty payload")
        self._tx_queue.append(DataPdu.make(LLID.DATA_START, payload))

    def send_control(self, control: ControlPdu) -> None:
        """Queue an LL control PDU for transmission."""
        self._tx_queue.append(DataPdu.make(LLID.CONTROL, control.to_payload()))

    def queued_pdus(self) -> int:
        """Number of PDUs waiting in the transmit queue."""
        return len(self._tx_queue)

    def clear_queue(self) -> None:
        """Drop all queued PDUs (used when a connection ends)."""
        self._tx_queue.clear()

    def next_pdu_to_send(self) -> DataPdu:
        """Choose the PDU for the current transmit opportunity.

        Applies the ARQ rule of paper §III-B6: retransmit the last PDU
        until acknowledged, then pull new data from the queue, otherwise
        send the empty PDU.  Encryption (when active) is applied at this
        point so retransmissions reuse the already-encrypted bytes.
        """
        conn = self._require_conn()
        sn, nesn = conn.bits_for_transmit()
        if conn.must_retransmit:
            last = conn.last_sent
            assert last is not None
            pdu = last.with_bits(sn, nesn)
        elif self._tx_queue:
            pdu = self._tx_queue.popleft()
            if self.encryption is not None:
                pdu = self.encryption.encrypt_pdu(pdu)
            pdu = pdu.with_bits(sn, nesn)
        else:
            pdu = DataPdu.empty(sn=sn, nesn=nesn)
        conn.note_sent(pdu)
        return pdu

    # ------------------------------------------------------------------
    # Frame transmission
    # ------------------------------------------------------------------

    def transmit_pdu(self, pdu: DataPdu, channel: int) -> RadioFrame:
        """Transmit a data-channel PDU on the connection's AA now."""
        conn = self._require_conn()
        pdu_bytes = pdu.to_bytes()
        crc = compute_crc(pdu_bytes, conn.params.crc_init)
        return self.radio.transmit(
            conn.params.access_address, pdu_bytes, crc, channel, self.phy
        )

    # ------------------------------------------------------------------
    # Reception plumbing (role classes override)
    # ------------------------------------------------------------------

    def _on_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        raise NotImplementedError

    def decrypt_if_needed(self, pdu: DataPdu) -> Optional[DataPdu]:
        """Decrypt a received PDU when encryption is active.

        Returns ``None`` — and terminates the connection — when the MIC
        fails: this is the DoS residual of InjectaBLE against encrypted
        links (paper §IV).
        """
        if self.encryption is None:
            return pdu
        try:
            return self.encryption.decrypt_pdu(pdu)
        except MicError:
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name, "mic-failure")
            self.disconnect("MIC failure")
            return None

    # ------------------------------------------------------------------
    # Connection lifecycle helpers
    # ------------------------------------------------------------------

    def _require_conn(self) -> ConnectionState:
        if self.conn is None:
            raise ConnectionStateError(f"{self.name}: not in a connection")
        return self.conn

    @property
    def is_connected(self) -> bool:
        """Whether the device currently holds a live connection."""
        return self.conn is not None and not self.conn.terminated

    def disconnect(self, reason: str) -> None:
        """Tear down the connection state and notify the host."""
        if self.conn is None:
            return
        self.conn.terminate(reason)
        self.conn = None
        self.encryption = None
        self.clear_queue()
        self.radio.stop_listening()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "disconnected", reason=reason)
        if self.on_disconnected is not None:
            self.on_disconnected(reason)

    def _notify_connected(self) -> None:
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "connected")
        if self.on_connected is not None:
            self.on_connected()

    def _deliver_data(self, payload: bytes) -> None:
        if self.on_data is not None:
            self.on_data(payload)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, addr={self.address})"
