"""Executable documentation checker (``repro doccheck``).

Docs rot: CLI surface grows PR by PR and the fenced examples in
README.md / EXPERIMENTS.md / docs/*.md silently drift (renamed flags,
removed subcommands, stale file paths).  This module makes the docs executable:
it extracts every ``repro …`` command from fenced ```bash/```console
blocks, rewrites it with tiny smoke budgets (2 connections per
configuration, 1-second captures), and runs it in-process against
:func:`repro.cli.main` in a scratch working directory.  An unknown flag
(argparse exit 2) or a non-zero exit fails the check — and CI.

Ground rules for doc authors:

* commands in one fenced block share a scratch directory and run in
  order, so multi-step examples (``campaign run`` → ``resume`` →
  ``report``) must stay in a single block;
* non-``repro`` commands (``pip``, ``pytest``, ``wireshark``…) are
  ignored, as are ``repro doccheck`` itself and lines marked
  ``# doccheck: skip``;
* leading ``VAR=value`` assignments become environment for that command;
* a token naming an existing repo file (``examples/….json``) is
  absolutised so the example works from the scratch directory.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import re
import shlex
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

#: Fence info strings whose blocks are scanned for commands.
COMMAND_FENCES = ("bash", "console", "sh", "shell")

#: Marker comment that excludes one command line from checking.
SKIP_MARKER = "doccheck: skip"

_ENV_ASSIGNMENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")


@dataclass(frozen=True)
class DocCommand:
    """One checkable ``repro`` invocation found in a markdown file.

    Attributes:
        path: markdown file the command came from.
        lineno: 1-based line of the command inside that file.
        block: index of the fenced block within the file (commands of
            one block share a scratch directory).
        argv: the command tokens, starting with ``repro``.
        env: leading ``VAR=value`` assignments.
    """

    path: Path
    lineno: int
    block: int
    argv: Tuple[str, ...]
    env: Tuple[Tuple[str, str], ...] = ()


@dataclass
class DocCheckResult:
    """Outcome of smoke-running one documented command."""

    command: DocCommand
    argv: Tuple[str, ...]
    status: str  # "ok" | "failed"
    exit_code: Optional[int] = None
    detail: str = ""
    output_tail: str = ""


def iter_fenced_blocks(text: str) -> List[Tuple[int, str, List[Tuple[int,
                                                                     str]]]]:
    """Yield ``(start line, info string, [(lineno, line), …])`` per fence."""
    blocks = []
    fence_info: Optional[str] = None
    start = 0
    lines: List[Tuple[int, str]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("```"):
            if fence_info is None:
                fence_info = stripped[3:].strip().lower()
                start = lineno
                lines = []
            else:
                blocks.append((start, fence_info, lines))
                fence_info = None
        elif fence_info is not None:
            lines.append((lineno, line))
    return blocks


def _join_continuations(lines: List[Tuple[int, str]]
                        ) -> List[Tuple[int, str]]:
    """Merge backslash-continued lines, keeping the first line number."""
    merged: List[Tuple[int, str]] = []
    pending: Optional[Tuple[int, str]] = None
    for lineno, line in lines:
        if pending is not None:
            lineno, line = pending[0], pending[1] + " " + line.strip()
        if line.rstrip().endswith("\\"):
            pending = (lineno, line.rstrip()[:-1].rstrip())
        else:
            merged.append((lineno, line))
            pending = None
    if pending is not None:
        merged.append(pending)
    return merged


def extract_commands(path: Path) -> List[DocCommand]:
    """All checkable ``repro`` commands in one markdown file, in order."""
    commands: List[DocCommand] = []
    text = path.read_text()
    for block_index, (_, info, lines) in enumerate(iter_fenced_blocks(text)):
        if info not in COMMAND_FENCES:
            continue
        for lineno, raw in _join_continuations(lines):
            line = raw.strip()
            if line.startswith("$"):  # console transcripts: $ marks input
                line = line[1:].strip()
            if not line or line.startswith("#"):
                continue
            if SKIP_MARKER in line:
                continue
            try:
                tokens = shlex.split(line, comments=True)
            except ValueError:
                continue
            env: List[Tuple[str, str]] = []
            while tokens and _ENV_ASSIGNMENT.match(tokens[0]):
                name, _, value = tokens.pop(0).partition("=")
                env.append((name, value))
            if tokens[:3] == ["python", "-m", "repro"]:
                tokens = ["repro"] + tokens[3:]
            if not tokens or tokens[0] != "repro":
                continue
            if tokens[1:2] == ["doccheck"]:
                continue  # no recursion
            commands.append(DocCommand(
                path=path, lineno=lineno, block=block_index,
                argv=tuple(tokens), env=tuple(env)))
    return commands


def _set_flag(argv: List[str], flag: str, value: str) -> List[str]:
    """Force ``flag value`` in ``argv``, replacing an existing setting."""
    out: List[str] = []
    i = 0
    while i < len(argv):
        token = argv[i]
        if token == flag:
            i += 2
            continue
        if token.startswith(flag + "="):
            i += 1
            continue
        out.append(token)
        i += 1
    out.extend([flag, value])
    return out


def budget_argv(argv: Sequence[str]) -> List[str]:
    """Rewrite a documented command with tiny smoke budgets.

    The docs show paper-faithful budgets (25 connections per
    configuration); the checker only needs to prove the command line
    still parses and the code path still runs, so sweeps are cut to 2
    connections (empirically still 100 % injection success at the
    documented seeds), profiles to 1, and captures to 1 simulated
    second.  Campaign examples run unmodified — their specs are
    required to be smoke-sized.
    """
    argv = list(argv)
    sub = argv[1] if len(argv) > 1 else ""
    if sub in ("experiment", "metrics"):
        argv = _set_flag(argv, "--connections", "2")
    elif sub == "profile":
        argv = _set_flag(argv, "--connections", "1")
        argv = _set_flag(argv, "--top", "5")
    elif sub == "capture":
        argv = _set_flag(argv, "--duration", "1")
    return argv


def default_doc_paths(root: Path) -> List[Path]:
    """The markdown files checked by default: README.md, EXPERIMENTS.md
    and every handbook under ``docs/`` (sorted for stable order)."""
    paths = [path for name in ("README.md", "EXPERIMENTS.md")
             if (path := root / name).exists()]
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        paths.extend(sorted(docs_dir.glob("*.md")))
    return paths


def find_repo_root() -> Path:
    """The documentation root: cwd if it has a README, else the checkout
    above an editable ``src/`` install of this package."""
    cwd = Path.cwd()
    if (cwd / "README.md").exists():
        return cwd
    return Path(__file__).resolve().parent.parent.parent


def _absolutize(argv: List[str], root: Path) -> List[str]:
    """Point tokens naming existing repo files at their absolute paths."""
    out = []
    for token in argv:
        if not token.startswith("-") and "/" in token or \
                token.endswith((".json", ".md")):
            candidate = root / token
            if candidate.exists():
                out.append(str(candidate))
                continue
        out.append(token)
    return out


def run_command(command: DocCommand, cwd: Path, root: Path,
                budget: bool = True) -> DocCheckResult:
    """Smoke-run one documented command in-process under ``cwd``."""
    argv = list(command.argv)
    if budget:
        argv = budget_argv(argv)
    argv = _absolutize(argv, root)
    buffer = io.StringIO()
    old_cwd = os.getcwd()
    old_env = {name: os.environ.get(name) for name, _ in command.env}
    exit_code: Optional[int] = None
    detail = ""
    try:
        os.chdir(cwd)
        for name, value in command.env:
            os.environ[name] = value
        from repro.cli import main as cli_main

        with contextlib.redirect_stdout(buffer), \
                contextlib.redirect_stderr(buffer):
            try:
                exit_code = cli_main(argv[1:])
            except SystemExit as exc:  # argparse: unknown flag/subcommand
                exit_code = int(exc.code or 0)
                if exit_code == 2:
                    detail = "argparse rejected the command (flag drift?)"
    except Exception as exc:  # noqa: BLE001 — any crash is a doc failure
        detail = f"{type(exc).__name__}: {exc}"
        exit_code = None
    finally:
        os.chdir(old_cwd)
        for name, value in old_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    ok = exit_code == 0
    tail = "\n".join(buffer.getvalue().splitlines()[-8:])
    return DocCheckResult(
        command=command, argv=tuple(argv),
        status="ok" if ok else "failed",
        exit_code=exit_code,
        detail=detail or ("" if ok else f"exit code {exit_code}"),
        output_tail="" if ok else tail)


@dataclass
class DocCheckReport:
    """All results of one doccheck run."""

    results: List[DocCheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No documented command failed."""
        return all(r.status == "ok" for r in self.results)

    @property
    def failures(self) -> List[DocCheckResult]:
        """The failed results, in document order."""
        return [r for r in self.results if r.status != "ok"]

    def render_text(self) -> str:
        """Human-readable summary."""
        lines = []
        for result in self.results:
            where = (f"{result.command.path.name}:"
                     f"{result.command.lineno}")
            cmd = " ".join(result.command.argv)
            lines.append(f"[{result.status:>6}] {where:<24} {cmd}")
            if result.status != "ok":
                if result.detail:
                    lines.append(f"         ↳ {result.detail}")
                for out_line in result.output_tail.splitlines():
                    lines.append(f"         | {out_line}")
        counts = (f"{len(self.results)} command(s), "
                  f"{len(self.failures)} failure(s)")
        lines.append(counts)
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report (CI artifact)."""
        return json.dumps({
            "ok": self.ok,
            "results": [{
                "file": str(r.command.path),
                "line": r.command.lineno,
                "command": list(r.command.argv),
                "ran": list(r.argv),
                "status": r.status,
                "exit_code": r.exit_code,
                "detail": r.detail,
            } for r in self.results],
        }, indent=2)


def check_docs(paths: Optional[Sequence[Path]] = None,
               root: Optional[Path] = None,
               budget: bool = True,
               stream: Optional[TextIO] = None) -> DocCheckReport:
    """Extract and smoke-run every documented ``repro`` command.

    Commands of one fenced block run sequentially in a shared scratch
    directory (with ``$REPRO_CACHE_DIR`` pointed at a scratch cache), so
    multi-step examples compose and nothing touches the user's state.
    """
    root = Path(root) if root is not None else find_repo_root()
    doc_paths = ([Path(p) for p in paths] if paths
                 else default_doc_paths(root))
    report = DocCheckReport()
    with tempfile.TemporaryDirectory(prefix="repro-doccheck-") as tmp:
        tmp_path = Path(tmp)
        old_cache = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        try:
            for path in doc_paths:
                block_dirs: Dict[int, Path] = {}
                for command in extract_commands(path):
                    cwd = block_dirs.get(command.block)
                    if cwd is None:
                        cwd = tmp_path / f"{path.stem}-{command.block:02d}"
                        cwd.mkdir(parents=True, exist_ok=True)
                        block_dirs[command.block] = cwd
                    result = run_command(command, cwd=cwd, root=root,
                                         budget=budget)
                    report.results.append(result)
                    if stream is not None:
                        print(f"[{result.status:>6}] "
                              f"{path.name}:{command.lineno} "
                              f"{' '.join(command.argv)}",
                              file=stream, flush=True)
        finally:
            if old_cache is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = old_cache
    return report
