"""The keyfob from the paper: an Immediate Alert peripheral that rings.

Scenario A injects a Write Command to the Alert Level characteristic to
make the fob ring (paper §VI-A).
"""

from __future__ import annotations

from repro.devices.base import SimulatedPeripheral
from repro.host.gatt.attributes import Characteristic, Service
from repro.host.gatt.uuids import (
    UUID_ALERT_LEVEL,
    UUID_BATTERY_LEVEL,
    UUID_BATTERY_SERVICE,
    UUID_IMMEDIATE_ALERT_SERVICE,
)

#: Alert levels of the Immediate Alert service.
ALERT_NONE = 0x00
ALERT_MILD = 0x01
ALERT_HIGH = 0x02


class Keyfob(SimulatedPeripheral):
    """A findable keyfob.

    Attributes:
        alert_level: last alert level written.
        ring_count: how many times a non-zero alert made it ring.
    """

    def _build_profile(self) -> None:
        self.alert_level = ALERT_NONE
        self.ring_count = 0
        alert_service = Service(UUID_IMMEDIATE_ALERT_SERVICE)
        self.alert_char = alert_service.add(
            Characteristic(UUID_ALERT_LEVEL, read=False, write=True,
                           write_no_rsp=True, on_write=self._on_alert)
        )
        self.gatt.register(alert_service)
        battery = Service(UUID_BATTERY_SERVICE)
        self.battery_char = battery.add(
            Characteristic(UUID_BATTERY_LEVEL, value=b"\x5f", read=True)
        )
        self.gatt.register(battery)

    def _on_alert(self, value: bytes) -> None:
        if not value:
            return
        self.alert_level = value[0]
        if self.alert_level != ALERT_NONE:
            self.ring_count += 1
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, self.name, "keyfob-ring",
                                      level=self.alert_level)

    @property
    def is_ringing(self) -> bool:
        """Whether the fob is currently ringing."""
        return self.alert_level != ALERT_NONE

    @staticmethod
    def ring_payload(level: int = ALERT_HIGH) -> bytes:
        """Alert Level value that makes the fob ring."""
        return bytes([level])
