"""Base class for simulated GATT peripherals.

Bundles a Slave Link Layer, a GATT server and the peripheral host glue,
and registers the GAP service every BLE device exposes (with the Device
Name characteristic Scenario B spoofs).
"""

from __future__ import annotations

from typing import Optional

from repro.host.gap import adv_data_with_name
from repro.host.gatt.attributes import Characteristic, Service
from repro.host.gatt.server import GattServer
from repro.host.gatt.uuids import UUID_DEVICE_NAME, UUID_GAP_SERVICE
from repro.host.stack import PeripheralHost
from repro.ll.pdu.address import BdAddress
from repro.ll.slave import SlaveLinkLayer
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator


class SimulatedPeripheral:
    """A complete simulated BLE peripheral.

    Args:
        sim: owning simulator.
        medium: shared radio medium (device must be placed in its topology).
        name: device/topology name; also the GAP Device Name value.
        address: BD_ADDR; generated when omitted.
        adv_interval_ms: advertising interval.
        ltk: pre-provisioned long-term key (enables encryption setup).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        address: Optional[BdAddress] = None,
        adv_interval_ms: float = 100.0,
        ltk: Optional[bytes] = None,
        sca_ppm: float = 50.0,
        tx_power_dbm: float = 0.0,
    ):
        self.sim = sim
        if address is None:
            address = BdAddress.generate(sim.streams.get(f"addr-{name}"))
        self.ll = SlaveLinkLayer(
            sim, medium, name, address,
            adv_interval_ms=adv_interval_ms,
            adv_data=adv_data_with_name(name),
            scan_data=adv_data_with_name(name),
            ltk=ltk,
            readvertise_on_disconnect=True,
            sca_ppm=sca_ppm,
            tx_power_dbm=tx_power_dbm,
        )
        self.gatt = GattServer()
        self.host = PeripheralHost(self.ll, self.gatt)
        self.device_name_char = Characteristic(
            UUID_DEVICE_NAME, value=name.encode(), read=True, write=True
        )
        gap = Service(UUID_GAP_SERVICE)
        gap.add(self.device_name_char)
        self.gatt.register(gap)
        self._build_profile()

    def _build_profile(self) -> None:
        """Subclasses register their application services here."""

    @property
    def name(self) -> str:
        """Device name."""
        return self.ll.name

    @property
    def address(self) -> BdAddress:
        """Device address."""
        return self.ll.address

    def power_on(self) -> None:
        """Start advertising."""
        self.ll.start_advertising()

    @property
    def is_connected(self) -> bool:
        """Whether the peripheral currently has a Central."""
        return self.ll.is_connected
