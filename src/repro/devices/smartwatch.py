"""The smartwatch from the paper: receives SMS pushed by the phone.

The phone writes SMS records to a vendor characteristic; the watch
displays them.  Scenario A injects a forged SMS; Scenario D rewrites a
legitimate one on the fly (paper §VI).  The SMS wire format here is
``sender_len | sender | text`` to keep records self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import SimulatedPeripheral
from repro.errors import CodecError
from repro.host.gatt.attributes import Characteristic, Service

UUID_WATCH_SERVICE = 0xFE20
UUID_WATCH_SMS = 0xFE21
UUID_WATCH_STEPS = 0xFE22


@dataclass(frozen=True)
class Sms:
    """A short message shown on the watch."""

    sender: str
    text: str

    def to_bytes(self) -> bytes:
        """Encode as sender_len | sender | text."""
        sender = self.sender.encode()
        if len(sender) > 255:
            raise CodecError("sender too long")
        return bytes([len(sender)]) + sender + self.text.encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Sms":
        """Decode an SMS record."""
        if not data:
            raise CodecError("empty SMS record")
        sender_len = data[0]
        if len(data) < 1 + sender_len:
            raise CodecError("truncated SMS record")
        return cls(
            data[1 : 1 + sender_len].decode(errors="replace"),
            data[1 + sender_len :].decode(errors="replace"),
        )


class Smartwatch(SimulatedPeripheral):
    """A notification-displaying smartwatch.

    Attributes:
        inbox: every SMS received, in order.
        steps: a step counter exposed for reads.
    """

    def _build_profile(self) -> None:
        self.inbox: list[Sms] = []
        self.steps = 4242
        service = Service(UUID_WATCH_SERVICE)
        self.sms_char = service.add(
            Characteristic(UUID_WATCH_SMS, read=False, write=True,
                           on_write=self._on_sms)
        )
        self.steps_char = service.add(
            Characteristic(UUID_WATCH_STEPS, read=True, notify=True,
                           on_read=lambda: self.steps.to_bytes(4, "little"))
        )
        self.gatt.register(service)

    def _on_sms(self, value: bytes) -> None:
        try:
            sms = Sms.from_bytes(value)
        except CodecError:
            return
        self.inbox.append(sms)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "sms-displayed",
                                  sender=sms.sender, text=sms.text)

    @property
    def last_sms(self) -> Sms:
        """Most recent SMS (raises if the inbox is empty)."""
        if not self.inbox:
            raise IndexError("inbox is empty")
        return self.inbox[-1]
