"""A smartphone Central: connects to peripherals, relays SMS to the watch.

Used as the legitimate Master in experiment 3 (§VII-C), with the default
Hop Interval of 36 the paper measured on a real phone.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.smartwatch import Sms
from repro.host.stack import CentralHost
from repro.ll.master import MasterLinkLayer
from repro.ll.pdu.address import BdAddress
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator


class Smartphone:
    """A phone acting as BLE Central.

    Args:
        sim: owning simulator.
        medium: shared radio medium.
        name: device/topology name.
        interval: hop interval proposed in CONNECT_REQ (paper: 36).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str = "smartphone",
        address: Optional[BdAddress] = None,
        interval: int = 36,
        sca_ppm: float = 50.0,
        tx_power_dbm: float = 0.0,
    ):
        self.sim = sim
        if address is None:
            address = BdAddress.generate(sim.streams.get(f"addr-{name}"))
        self.ll = MasterLinkLayer(
            sim, medium, name, address, interval=interval,
            sca_ppm=sca_ppm, tx_power_dbm=tx_power_dbm,
        )
        self.host = CentralHost(self.ll)

    @property
    def name(self) -> str:
        """Device name."""
        return self.ll.name

    @property
    def gatt(self):
        """The GATT client."""
        return self.host.gatt

    def connect_to(self, address: BdAddress) -> None:
        """Scan for and connect to a peripheral."""
        self.ll.connect(address)

    @property
    def is_connected(self) -> bool:
        """Whether a connection is live."""
        return self.ll.is_connected

    def send_sms_to_watch(self, sms_handle: int, sender: str, text: str) -> None:
        """Push an SMS record to a connected smartwatch."""
        self.gatt.write(sms_handle, Sms(sender, text).to_bytes())
