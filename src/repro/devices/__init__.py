"""Simulated victim devices: the paper's lightbulb, keyfob and smartwatch,
plus a smartphone Central."""

from repro.devices.base import SimulatedPeripheral
from repro.devices.keyfob import Keyfob
from repro.devices.lightbulb import Lightbulb
from repro.devices.smartphone import Smartphone
from repro.devices.smartwatch import Smartwatch

__all__ = [
    "Keyfob",
    "Lightbulb",
    "SimulatedPeripheral",
    "Smartphone",
    "Smartwatch",
]
