"""The connected lightbulb from the paper's experiments.

The paper reverse-engineered a commercial bulb whose GATT protocol accepts
Write Requests controlling power, colour and brightness, and which
supported the widest Hop Interval range of the devices tested (§VII-A).
This simulated bulb exposes the same surface:

* a control characteristic accepting opcode-tagged writes
  (``0x01 on/off``, ``0x02 RGB``, ``0x03 brightness``);
* a state characteristic readable back.

The injected "turn off" Write Request of experiments 1-3 targets the
control characteristic with a 14-byte PDU, reproducing the paper's 22-byte
over-the-air frame.
"""

from __future__ import annotations

from repro.devices.base import SimulatedPeripheral
from repro.host.gatt.attributes import Characteristic, Service

#: Vendor service/characteristic UUIDs (16-bit, private range).
UUID_BULB_SERVICE = 0xFF10
UUID_BULB_CONTROL = 0xFF11
UUID_BULB_STATE = 0xFF12

#: Control opcodes.
OP_POWER = 0x01
OP_COLOR = 0x02
OP_BRIGHTNESS = 0x03
OP_TOGGLE = 0x04


class Lightbulb(SimulatedPeripheral):
    """A controllable RGB lightbulb.

    Attributes:
        is_on: current power state.
        color: current (r, g, b).
        brightness: 0-255.
        command_log: every decoded control write, for experiment checks.
    """

    def _build_profile(self) -> None:
        self.is_on = True
        self.color = (255, 255, 255)
        self.brightness = 255
        self.command_log: list[tuple] = []
        service = Service(UUID_BULB_SERVICE)
        self.control_char = service.add(
            Characteristic(UUID_BULB_CONTROL, read=False, write=True,
                           write_no_rsp=True, on_write=self._on_control)
        )
        self.state_char = service.add(
            Characteristic(UUID_BULB_STATE, read=True,
                           on_read=self._read_state)
        )
        self.gatt.register(service)

    # ------------------------------------------------------------------
    # Control protocol
    # ------------------------------------------------------------------

    def _on_control(self, value: bytes) -> None:
        if not value:
            # The shortest observable command: an empty write toggles power
            # (several commercial bulbs behave this way).
            self.is_on = not self.is_on
            self.command_log.append(("toggle", self.is_on))
            return
        opcode = value[0]
        if opcode == OP_TOGGLE:
            self.is_on = not self.is_on
            self.command_log.append(("toggle", self.is_on))
        elif opcode == OP_POWER and len(value) >= 2:
            self.is_on = bool(value[1])
            self.command_log.append(("power", self.is_on))
        elif opcode == OP_COLOR and len(value) >= 4:
            self.color = (value[1], value[2], value[3])
            self.command_log.append(("color", self.color))
        elif opcode == OP_BRIGHTNESS and len(value) >= 2:
            self.brightness = value[1]
            self.command_log.append(("brightness", self.brightness))
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "bulb-command",
                                  state=self.describe())

    def _read_state(self) -> bytes:
        return bytes([int(self.is_on), *self.color, self.brightness])

    def describe(self) -> str:
        """Human-readable state summary."""
        r, g, b = self.color
        power = "on" if self.is_on else "off"
        return f"{power} rgb=({r},{g},{b}) brightness={self.brightness}"

    # ------------------------------------------------------------------
    # Payload builders (used by examples, experiments and the attacker)
    # ------------------------------------------------------------------

    @staticmethod
    def power_payload(on: bool, pad_to: int = 0) -> bytes:
        """Control value toggling power, optionally zero-padded."""
        payload = bytes([OP_POWER, int(on)])
        return payload + b"\x00" * max(0, pad_to - len(payload))

    @staticmethod
    def color_payload(r: int, g: int, b: int, pad_to: int = 0) -> bytes:
        """Control value setting the RGB colour."""
        payload = bytes([OP_COLOR, r, g, b])
        return payload + b"\x00" * max(0, pad_to - len(payload))

    @staticmethod
    def brightness_payload(level: int, pad_to: int = 0) -> bytes:
        """Control value setting brightness."""
        payload = bytes([OP_BRIGHTNESS, level])
        return payload + b"\x00" * max(0, pad_to - len(payload))
