"""Process-pool execution of independent simulation workloads.

Every paper artefact is rebuilt from *embarrassingly parallel* units —
seed-deterministic trials (or whole scenario worlds) that share no state.
This module fans them out over a ``ProcessPoolExecutor``:

* **chunked submission** — items are grouped into contiguous chunks so the
  per-task IPC overhead is amortised over several multi-hundred-millisecond
  simulations;
* **deterministic ordering** — results are reassembled by item index, so
  ``jobs=N`` returns exactly the list serial execution returns;
* **graceful fallback** — ``jobs=1``, a single item, or any environment
  where worker processes cannot be created (sandboxes without ``fork``/
  semaphores, broken pools mid-run) falls back to in-process execution of
  whatever is still missing.

``execute_trials`` layers the on-disk :class:`~repro.runner.cache.ResultCache`
on top: cached trials never reach the pool, and fresh results are persisted
before returning.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional, Sequence, Union

#: Environment variable giving the default worker count for the runner.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Normalise a ``jobs`` request to a positive worker count.

    ``None`` reads ``$REPRO_JOBS`` (default 1 — parallelism is opt-in so
    library users keep single-process semantics).  ``0`` or negative means
    "all cores".
    """
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _chunk_indices(n_items: int, n_chunks: int) -> list[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous runs."""
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    out, start = [], 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def _run_chunk(fn: Callable[[Any], Any], items: list) -> list:
    """Worker entry point: apply ``fn`` to each item of one chunk."""
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    chunks_per_worker: int = 4,
) -> list:
    """``[fn(x) for x in items]`` over a process pool, order-preserving.

    ``fn`` and every item must be picklable (module-level function, plain
    dataclasses).  Falls back to in-process execution when ``jobs`` resolves
    to 1 or the pool cannot be created; if the pool breaks mid-run, the
    missing chunks are recomputed serially — results are identical either
    way, because each item is independent and internally seeded.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]

    chunks = _chunk_indices(len(items), jobs * chunks_per_worker)
    results: list = [None] * len(items)
    done = [False] * len(chunks)

    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            futures = [
                (ci, pool.submit(_run_chunk, fn, [items[i] for i in span]))
                for ci, span in enumerate(chunks)
            ]
            for ci, future in futures:
                chunk_results = future.result()
                for offset, i in enumerate(chunks[ci]):
                    results[i] = chunk_results[offset]
                done[ci] = True
    except Exception as exc:
        # Only infrastructure failures (no multiprocessing support, pool
        # creation denied, pool broken mid-run) trigger the serial fallback;
        # an exception raised by fn() inside a worker is re-raised verbatim.
        from concurrent.futures.process import BrokenProcessPool

        if not isinstance(exc, (ImportError, NotImplementedError, OSError,
                                PermissionError, BrokenProcessPool)):
            raise
    for ci, span in enumerate(chunks):
        if not done[ci]:
            for i in span:
                results[i] = fn(items[i])
    return results


def merge_trial_metrics(results: Sequence[Any]) -> dict:
    """Aggregate per-trial telemetry snapshots into one campaign snapshot.

    Each :class:`TrialResult` produced with ``collect_metrics=True`` carries
    its world's :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`
    as a plain dict, so snapshots survive the pickle hop back from worker
    processes unchanged.  Merging is pure data-plane arithmetic (counters
    sum, gauges max, histograms add bucket-wise) and results arrive in
    deterministic trial order, so the aggregate is identical for any
    ``jobs`` value.

    Results without metrics (``collect_metrics=False``, failed worlds) are
    skipped; an empty snapshot is returned when none carry any.
    """
    from repro.telemetry.metrics import merge_snapshots

    return merge_snapshots(
        getattr(result, "metrics", None) for result in results
    )


def _run_one_trial(trial: Any) -> Any:
    """Module-level (hence picklable) single-trial worker."""
    from repro.experiments.common import run_single_trial

    return run_single_trial(trial)


def execute_trials(
    trials: Sequence[Any],
    jobs: Optional[int] = None,
    cache: Union[None, bool, "ResultCache"] = None,
) -> list:
    """Run a batch of :class:`InjectionTrial` configs, possibly in parallel.

    Args:
        trials: trial configs, one independent simulated world each.
        jobs: worker processes (``None`` → ``$REPRO_JOBS`` → 1; ``<=0`` →
            all cores).
        cache: ``None``/``False`` disables caching; ``True`` uses the
            default on-disk :class:`ResultCache`; an instance is used as
            given.

    Returns:
        ``TrialResult`` objects in trial order — bit-identical to serial
        execution for the same trial list.
    """
    trials = list(trials)
    if cache is True:
        from repro.runner.cache import ResultCache

        cache = ResultCache()
    elif cache is False:
        cache = None

    results: list = [None] * len(trials)
    missing: list[int] = []
    if cache is not None:
        for i, trial in enumerate(trials):
            hit = cache.get(trial)
            if hit is not None:
                results[i] = hit
            else:
                missing.append(i)
    else:
        missing = list(range(len(trials)))

    if missing:
        fresh = parallel_map(_run_one_trial, [trials[i] for i in missing],
                             jobs=jobs)
        for slot, result in zip(missing, fresh):
            results[slot] = result
            if cache is not None:
                cache.put(trials[slot], result)
    return results
