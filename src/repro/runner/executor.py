"""Process-pool execution of independent simulation workloads.

Every paper artefact is rebuilt from *embarrassingly parallel* units —
seed-deterministic trials (or whole scenario worlds) that share no state.
This module fans them out over a ``ProcessPoolExecutor``:

* **chunked submission** — items are grouped into contiguous chunks so the
  per-task IPC overhead is amortised over several multi-hundred-millisecond
  simulations;
* **deterministic ordering** — results are reassembled by item index, so
  ``jobs=N`` returns exactly the list serial execution returns;
* **graceful fallback** — ``jobs=1``, a single item, or any environment
  where worker processes cannot be created (sandboxes without ``fork``/
  semaphores, broken pools mid-run) falls back to in-process execution of
  whatever is still missing.

``execute_trials`` layers the on-disk :class:`~repro.runner.cache.ResultCache`
on top: cached trials never reach the pool, and fresh results are persisted
before returning.

For workloads that must *survive* misbehaving units — the campaign engine's
territory — :func:`run_units_robust` trades the pool's amortised IPC for
full per-unit isolation: every unit runs in its own killable child process
with a wall-clock deadline, bounded retry with exponential backoff, and
crash quarantine (a unit that keeps killing its worker is recorded as
failed instead of being re-queued forever).  Wall-clock reads here are
watchdog plumbing only — they schedule work, they never feed trial bytes,
which is why this module is exempt from the ``nondeterministic-call`` lint.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

#: Environment variable giving the default worker count for the runner.
JOBS_ENV = "REPRO_JOBS"

#: Failure kinds that are re-queued (bounded by ``max_retries``); a clean
#: exception is deterministic in this codebase and therefore never retried.
RETRYABLE_STATUSES = ("timeout", "crash")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Normalise a ``jobs`` request to a positive worker count.

    ``None`` reads ``$REPRO_JOBS`` (default 1 — parallelism is opt-in so
    library users keep single-process semantics).  ``0`` or negative means
    "all cores".
    """
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _chunk_indices(n_items: int, n_chunks: int) -> list[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous runs."""
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    out, start = [], 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def _run_chunk(fn: Callable[[Any], Any], items: list) -> list:
    """Worker entry point: apply ``fn`` to each item of one chunk."""
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    chunks_per_worker: int = 4,
) -> list:
    """``[fn(x) for x in items]`` over a process pool, order-preserving.

    ``fn`` and every item must be picklable (module-level function, plain
    dataclasses).  Falls back to in-process execution when ``jobs`` resolves
    to 1 or the pool cannot be created; if the pool breaks mid-run, the
    missing chunks are recomputed serially — results are identical either
    way, because each item is independent and internally seeded.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]

    chunks = _chunk_indices(len(items), jobs * chunks_per_worker)
    results: list = [None] * len(items)
    done = [False] * len(chunks)

    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            futures = [
                (ci, pool.submit(_run_chunk, fn, [items[i] for i in span]))
                for ci, span in enumerate(chunks)
            ]
            for ci, future in futures:
                chunk_results = future.result()
                for offset, i in enumerate(chunks[ci]):
                    results[i] = chunk_results[offset]
                done[ci] = True
    except Exception as exc:
        # Only infrastructure failures (no multiprocessing support, pool
        # creation denied, pool broken mid-run) trigger the serial fallback;
        # an exception raised by fn() inside a worker is re-raised verbatim.
        from concurrent.futures.process import BrokenProcessPool

        if not isinstance(exc, (ImportError, NotImplementedError, OSError,
                                PermissionError, BrokenProcessPool)):
            raise
    for ci, span in enumerate(chunks):
        if not done[ci]:
            for i in span:
                results[i] = fn(items[i])
    return results


@dataclass
class UnitOutcome:
    """Final fate of one work unit under :func:`run_units_robust`.

    Attributes:
        index: position of the unit in the submitted sequence.
        status: ``"ok"`` | ``"timeout"`` | ``"crash"`` | ``"error"``.
            ``timeout`` — the worker exceeded its wall-clock deadline and
            was terminated; ``crash`` — the worker died without reporting
            (segfault, ``os._exit``, OOM-kill); ``error`` — the unit raised
            a clean exception (deterministic, hence never retried).
        result: the unit's return value when ``status == "ok"``.
        detail: human-readable failure description (exception text, exit
            code, deadline) for non-ok statuses.
        retries: failed attempts consumed before this outcome (0 on a
            first-try success; ``max_retries`` on a quarantined unit).
    """

    index: int
    status: str
    result: Any = None
    detail: str = ""
    retries: int = 0

    @property
    def ok(self) -> bool:
        """Whether the unit completed and ``result`` is valid."""
        return self.status == "ok"


@dataclass
class _Attempt:
    """Scheduler bookkeeping for one unit: failures so far, retry gate."""

    index: int
    tries: int = 0          # failed attempts so far
    not_before: float = 0.0  # monotonic gate for backoff re-queueing


def _robust_child(fn: Callable[[Any], Any], item: Any, conn: Any) -> None:
    """Child-process entry point: run one unit, ship the outcome home.

    Anything that escapes — including an unpicklable result — is reported
    as an ``error`` payload; a child that dies before sending anything is
    classified as a ``crash`` by the parent.
    """
    try:
        payload: Tuple[str, Any, str] = ("ok", fn(item), "")
    except BaseException as exc:  # noqa: BLE001 - the whole point is capture
        payload = ("error", None, f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    except Exception:
        try:
            conn.send(("error", None,
                       "result could not be pickled back to the parent"))
        except Exception:
            pass
    finally:
        conn.close()


def _run_unit_inprocess(fn: Callable[[Any], Any], item: Any
                        ) -> Tuple[str, Any, str]:
    """Fallback single-unit execution when child processes are unavailable.

    Converts clean exceptions into ``error`` outcomes; it cannot survive a
    hang or a hard exit (no process boundary to kill), which is acceptable
    in the sandboxes that lack ``fork`` — those also cannot host the
    runaway native code the boundary exists to contain.
    """
    try:
        return ("ok", fn(item), "")
    except Exception as exc:
        return ("error", None, f"{type(exc).__name__}: {exc}")


def run_units_robust(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    backoff_s: float = 0.25,
    on_outcome: Optional[Callable[[UnitOutcome], None]] = None,
) -> List[UnitOutcome]:
    """Run every item in its own killable child process; never hang, never die.

    The fault-tolerance contract (the campaign engine is built on it):

    * **per-unit timeout** — a unit that exceeds ``timeout_s`` wall-clock
      seconds is terminated and classified ``timeout``; completed units
      keep their results (nothing is dropped with the stalled chunk, as the
      chunked pool used to do);
    * **crash isolation** — a worker that dies without reporting (hard
      exit, signal) is classified ``crash``; the parent and every other
      in-flight unit are unaffected;
    * **bounded retry with exponential backoff** — ``timeout``/``crash``
      attempts are re-queued up to ``max_retries`` times, waiting
      ``backoff_s * 2**(tries-1)`` seconds between attempts; a unit that
      keeps killing its worker is then *quarantined*: recorded as failed,
      not re-queued forever.  Clean exceptions are deterministic here and
      fail immediately;
    * **deterministic ordering** — outcomes are returned in item order;
      ``on_outcome`` (the campaign journal hook) fires as units finalise,
      in completion order.

    Falls back to in-process execution (no preemptive timeout, no crash
    survival) only where child processes cannot be created at all.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    outcomes: List[Optional[UnitOutcome]] = [None] * len(items)

    def finalize(outcome: UnitOutcome) -> None:
        outcomes[outcome.index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    backlog: List[_Attempt] = [_Attempt(i) for i in range(len(items))]
    # conn -> (attempt, process, absolute deadline or None)
    running: Dict[Any, Tuple[_Attempt, Any, Optional[float]]] = {}

    def retire(attempt: _Attempt, status: str, detail: str) -> None:
        """Classify one failed attempt: re-queue with backoff or finalize."""
        attempt.tries += 1
        if status in RETRYABLE_STATUSES and attempt.tries <= max_retries:
            attempt.not_before = (
                time.monotonic() + backoff_s * (2 ** (attempt.tries - 1)))
            backlog.append(attempt)
        else:
            finalize(UnitOutcome(attempt.index, status,
                                 detail=detail, retries=attempt.tries - 1))

    def reap(conn: Any) -> None:
        """Collect the payload (or death) of one finished child."""
        attempt, process, _ = running.pop(conn)
        try:
            status, result, detail = conn.recv()
        except (EOFError, OSError):
            process.join(5)
            retire(attempt, "crash",
                   f"worker died without reporting "
                   f"(exit code {process.exitcode})")
            conn.close()
            return
        process.join(5)
        conn.close()
        if status == "ok":
            finalize(UnitOutcome(attempt.index, "ok", result=result,
                                 retries=attempt.tries))
        else:
            retire(attempt, status, detail)

    pool_broken = False
    try:
        import multiprocessing

        ctx = multiprocessing.get_context()
        from multiprocessing.connection import wait as conn_wait

        while backlog or running:
            now = time.monotonic()
            # Spawn every due attempt a free slot exists for, in queue order.
            spawnable = [a for a in backlog if a.not_before <= now]
            while spawnable and len(running) < jobs:
                attempt = spawnable.pop(0)
                backlog.remove(attempt)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_robust_child,
                    args=(fn, items[attempt.index], child_conn),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                deadline = (now + timeout_s) if timeout_s is not None else None
                running[parent_conn] = (attempt, process, deadline)
            if not running:
                # Everything pending is backing off: sleep to the next gate.
                gate = min(a.not_before for a in backlog)
                time.sleep(max(0.0, min(gate - time.monotonic(), 1.0)))
                continue
            # Wake on the first completion, expired deadline or retry gate.
            horizon: List[float] = [d for _, _, d in running.values()
                                    if d is not None]
            horizon.extend(a.not_before for a in backlog)
            wait_s = 0.5
            if horizon:
                wait_s = max(0.01, min(min(horizon) - time.monotonic(), 0.5))
            for conn in conn_wait(list(running), timeout=wait_s):
                reap(conn)
            now = time.monotonic()
            for conn in [c for c, (_, _, d) in running.items()
                         if d is not None and d < now]:
                if conn.poll():  # finished just as the deadline expired
                    reap(conn)
                    continue
                attempt, process, _expired = running.pop(conn)
                process.terminate()
                process.join(1)
                if process.is_alive():  # pragma: no cover - SIGTERM ignored
                    process.kill()
                    process.join(1)
                conn.close()
                retire(attempt, "timeout",
                       f"exceeded the {timeout_s} s per-unit deadline "
                       f"and was terminated")
    except (ImportError, NotImplementedError, OSError, PermissionError):
        pool_broken = True
        for conn, (attempt, process, _) in list(running.items()):
            try:
                process.terminate()
                process.join(1)
                conn.close()
            except Exception:
                pass
            backlog.append(attempt)
        running.clear()
    if pool_broken or backlog:
        # No child processes here (sandbox) or the machinery broke mid-run:
        # finish the stragglers in-process, without preemptive timeouts.
        for attempt in list(backlog):
            status, result, detail = _run_unit_inprocess(
                fn, items[attempt.index])
            if status == "ok":
                finalize(UnitOutcome(attempt.index, "ok", result=result,
                                     retries=attempt.tries))
            else:
                attempt.tries += 1
                finalize(UnitOutcome(attempt.index, "error", detail=detail,
                                     retries=attempt.tries - 1))
        backlog.clear()
    return [outcome for outcome in outcomes if outcome is not None]


def run_unit_robust(
    fn: Callable[[Any], Any],
    item: Any,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    backoff_s: float = 0.25,
) -> UnitOutcome:
    """Run one unit under the full robust contract; return its outcome.

    The campaign service's worker loop leases units one at a time, so it
    needs :func:`run_units_robust`'s timeout/retry/quarantine taxonomy at
    single-unit granularity: the unit runs in its own killable child
    process, a hang is terminated at ``timeout_s``, retryable failures
    are re-attempted up to ``max_retries`` times, and the returned
    :class:`UnitOutcome` carries the same ``ok``/``timeout``/``crash``/
    ``error`` classification the batch engine journals.
    """
    (outcome,) = run_units_robust(
        fn, [item], jobs=1, timeout_s=timeout_s,
        max_retries=max_retries, backoff_s=backoff_s)
    return outcome


def merge_trial_metrics(results: Sequence[Any]) -> dict:
    """Aggregate per-trial telemetry snapshots into one campaign snapshot.

    Each :class:`TrialResult` produced with ``collect_metrics=True`` carries
    its world's :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`
    as a plain dict, so snapshots survive the pickle hop back from worker
    processes unchanged.  Merging is pure data-plane arithmetic (counters
    sum, gauges max, histograms add bucket-wise) and results arrive in
    deterministic trial order, so the aggregate is identical for any
    ``jobs`` value.

    Results without metrics (``collect_metrics=False``, failed worlds) are
    skipped; an empty snapshot is returned when none carry any.
    """
    from repro.telemetry.metrics import merge_snapshots

    return merge_snapshots(
        getattr(result, "metrics", None) for result in results
    )


def _run_one_trial(trial: Any) -> Any:
    """Module-level (hence picklable) single-trial worker."""
    from repro.experiments.common import run_single_trial

    return run_single_trial(trial)


def _failure_result(outcome: UnitOutcome) -> Any:
    """A ``TrialResult`` placeholder recording why a trial never finished."""
    from repro.experiments.common import TrialResult

    detail = outcome.status
    if outcome.detail:
        detail = f"{outcome.status}: {outcome.detail}"
    return TrialResult(success=False, attempts=0, failure=detail)


def execute_trials(
    trials: Sequence[Any],
    jobs: Optional[int] = None,
    cache: Union[None, bool, "ResultCache"] = None,
    *,
    timeout_s: Optional[float] = None,
    max_retries: int = 0,
    backoff_s: float = 0.25,
    isolate: bool = False,
    runner: Optional[Callable[[Any], Any]] = None,
    on_result: Optional[Callable[[int, Any, Any, Optional[UnitOutcome],
                                  bool], None]] = None,
) -> list:
    """Run a batch of :class:`InjectionTrial` configs, possibly in parallel.

    Args:
        trials: trial configs, one independent simulated world each.
        jobs: worker processes (``None`` → ``$REPRO_JOBS`` → 1; ``<=0`` →
            all cores).
        cache: ``None``/``False`` disables caching; ``True`` uses the
            default on-disk :class:`ResultCache`; an instance is used as
            given.
        timeout_s: per-trial wall-clock deadline.  Setting it routes
            execution through :func:`run_units_robust`: a hung trial is
            terminated and recorded as a failure *result* while every
            completed trial keeps its full result — including its
            telemetry snapshot — instead of the whole panel stalling.
        max_retries: bounded re-queueing of timed-out/crashed trials
            (exponential backoff, ``backoff_s`` base); a trial that keeps
            killing its worker is quarantined as failed.
        backoff_s: base delay between retry attempts.
        isolate: force the per-trial-process robust path even without a
            timeout or retries (crash isolation on its own).
        runner: the picklable single-item callable (defaults to running
            an ``InjectionTrial``); campaign units supply a dispatcher.
        on_result: streaming hook ``(index, trial, result, outcome,
            cached)`` fired as each slot resolves — cache hits immediately
            (``outcome=None, cached=True``), fresh robust results in
            completion order, plain-pool results in trial order.

    Returns:
        ``TrialResult`` objects in trial order — bit-identical to serial
        execution for the same trial list.  Under the robust path, a slot
        whose trial ultimately failed holds a placeholder result with
        :attr:`TrialResult.failure` set to the failure taxonomy
        (``timeout`` / ``crash`` / ``error``) instead of raising.
    """
    trials = list(trials)
    if cache is True:
        from repro.runner.cache import ResultCache

        cache = ResultCache()
    elif cache is False:
        cache = None
    run_fn = runner if runner is not None else _run_one_trial

    results: list = [None] * len(trials)
    missing: list[int] = []
    if cache is not None:
        for i, trial in enumerate(trials):
            hit = cache.get(trial)
            if hit is not None:
                results[i] = hit
                if on_result is not None:
                    on_result(i, trial, hit, None, True)
            else:
                missing.append(i)
    else:
        missing = list(range(len(trials)))

    if not missing:
        return results

    robust = isolate or timeout_s is not None or max_retries > 0
    if robust:
        def settle(outcome: UnitOutcome) -> None:
            slot = missing[outcome.index]
            result = outcome.result if outcome.ok \
                else _failure_result(outcome)
            results[slot] = result
            if outcome.ok and cache is not None:
                cache.put(trials[slot], result)
            if on_result is not None:
                on_result(slot, trials[slot], result, outcome, False)

        run_units_robust(
            run_fn, [trials[i] for i in missing], jobs=jobs,
            timeout_s=timeout_s, max_retries=max_retries,
            backoff_s=backoff_s, on_outcome=settle,
        )
    else:
        fresh = parallel_map(run_fn, [trials[i] for i in missing], jobs=jobs)
        for slot, result in zip(missing, fresh):
            results[slot] = result
            if cache is not None:
                cache.put(trials[slot], result)
            if on_result is not None:
                on_result(slot, trials[slot], result, None, False)
    return results
