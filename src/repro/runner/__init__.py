"""Parallel trial execution and result caching.

The experiment harness (``repro.experiments``) builds every paper artefact
out of independent, seed-deterministic simulation units.  This package
executes those units:

* :func:`execute_trials` — process-pool execution of ``InjectionTrial``
  batches with deterministic ordering and an optional on-disk result cache;
* :func:`parallel_map` — the underlying order-preserving pool map, also
  used for scenario suites and IDS ablation runs;
* :class:`ResultCache` — trial-keyed, code-version-aware pickle store.

Parallelism is opt-in everywhere: ``jobs=None`` honours ``$REPRO_JOBS``
and defaults to single-process execution with results identical to the
parallel path.
"""

from repro.runner.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    code_version_token,
    default_cache_dir,
    source_tree_token,
    stable_trial_key,
)
from repro.runner.executor import (
    JOBS_ENV,
    UnitOutcome,
    execute_trials,
    merge_trial_metrics,
    parallel_map,
    resolve_jobs,
    run_unit_robust,
    run_units_robust,
)

__all__ = [
    "CACHE_DIR_ENV",
    "JOBS_ENV",
    "ResultCache",
    "UnitOutcome",
    "code_version_token",
    "default_cache_dir",
    "execute_trials",
    "merge_trial_metrics",
    "parallel_map",
    "resolve_jobs",
    "run_unit_robust",
    "run_units_robust",
    "source_tree_token",
    "stable_trial_key",
]
