"""On-disk cache of trial results.

Re-running an unchanged benchmark panel should be near-instant: every
completed :class:`~repro.experiments.common.InjectionTrial` is persisted
under a key derived from

* a **stable hash of the trial dataclass** — every field, in declaration
  order, rendered via ``repr`` (seeds, geometry, SCA, flags: any edit to
  any field produces a different key), and
* a **code-version token** — a hash over the source text of every
  *result-relevant* module of the ``repro`` package (simulator, link layer,
  PHY, crypto, kernels, devices, experiments, ...), so results computed by
  older code are never replayed after the simulation changes.  Modules
  that cannot influence trial bytes — the static-analysis toolkit
  (``lintkit``), reporting (``analysis``), the CLI — are excluded, so
  editing a lint checker or a report renderer does not spuriously flush
  the cache.

Entries are pickle files sharded two levels deep under the cache root
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro-injectable/trials``).  A corrupt
or unreadable entry is treated as a miss and removed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import fields, is_dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Optional

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every cached result regardless of code hashing.
CACHE_SCHEMA_VERSION = 1

#: Top-level entries of the ``repro`` package whose source can never change
#: trial results.  Everything *not* listed here feeds the code-version
#: token: when in doubt a module hashes in (a spurious cache flush is
#: cheap; a stale replay is a correctness bug).
CACHE_IRRELEVANT_PREFIXES = (
    "lintkit/",       # static analysis: reads the tree, never runs trials
    "analysis/",      # rendering/statistics over finished results
    "campaign/",      # orchestration around execute_trials; trials
                      # themselves are defined and run by experiments/
    "cli.py",         # argument parsing around the library entry points
    "doccheck.py",    # drives the CLI against the docs
    "telemetry/progress.py",  # progress counters over finished units
    "__main__.py",
)


def _is_result_relevant(relpath: str) -> bool:
    """Whether the source file at ``relpath`` feeds the code token."""
    return not any(
        relpath == prefix or relpath.startswith(prefix)
        for prefix in CACHE_IRRELEVANT_PREFIXES
    )


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-injectable``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-injectable" / "trials"


def source_tree_token(package_root: Path,
                      schema_version: int = CACHE_SCHEMA_VERSION) -> str:
    """Hash of every result-relevant ``.py`` file under ``package_root``.

    Files are walked in sorted order and keyed by relative POSIX path, so
    the token is identical across machines and filesystems for the same
    source tree.  Files matching :data:`CACHE_IRRELEVANT_PREFIXES` are
    skipped — see the module docstring for the rationale.
    """
    package_root = Path(package_root)
    digest = hashlib.sha256(f"schema:{schema_version}".encode())
    for path in sorted(package_root.rglob("*.py")):
        relpath = path.relative_to(package_root).as_posix()
        if not _is_result_relevant(relpath):
            continue
        digest.update(relpath.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


@lru_cache(maxsize=1)
def code_version_token() -> str:
    """Code-version token of the installed ``repro`` package.

    Any edit to a result-relevant source file — simulator, link layer,
    devices, experiments, codec kernels — yields a new token, so stale
    results can never be replayed.  Computed once per process (reading
    ~200 small files takes milliseconds).
    """
    import repro

    return source_tree_token(Path(repro.__file__).parent)


def stable_trial_key(trial: Any, token: Optional[str] = None) -> str:
    """Deterministic cache key for a trial dataclass.

    Fields are serialised in declaration order as ``name=repr(value)``;
    ``repr`` of ints/floats/bools/strings is stable across processes and
    runs (no ``PYTHONHASHSEED`` dependence).
    """
    if not is_dataclass(trial):
        raise TypeError(f"expected a dataclass trial, got {type(trial)!r}")
    if token is None:
        token = code_version_token()
    parts = [f"{type(trial).__qualname__}", f"code={token}"]
    for spec in fields(trial):
        parts.append(f"{spec.name}={getattr(trial, spec.name)!r}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class ResultCache:
    """Pickle-backed trial-result store.

    Args:
        root: cache directory; defaults to :func:`default_cache_dir`.
        token: code-version token override (tests use a fixed token to
            exercise hit/miss behaviour without hashing the source tree).

    Attributes:
        hits / misses / stores: per-instance counters, for tests and for
            the benchmark summary lines.
    """

    def __init__(self, root: Optional[Path] = None,
                 token: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self._token = token
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def token(self) -> str:
        """The code-version token in force for this cache instance."""
        if self._token is None:
            self._token = code_version_token()
        return self._token

    def key_for(self, trial: Any) -> str:
        """Cache key of ``trial`` under the current code version."""
        return stable_trial_key(trial, self.token)

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, trial: Any) -> Optional[Any]:
        """Cached result for ``trial``, or ``None`` on a miss."""
        path = self._path_for(self.key_for(trial))
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt or written by an incompatible version: drop it.
            # pickle surfaces garbage as UnpicklingError, EOFError,
            # ValueError, KeyError, Attribute/Import/IndexError, ...
            # depending on which byte it chokes on, so catch broadly.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, trial: Any, result: Any) -> None:
        """Persist ``result`` for ``trial`` (atomic rename)."""
        path = self._path_for(self.key_for(trial))
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            return  # caching is best-effort; never fail the experiment
        self.stores += 1

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))
