"""Security-Manager legacy-pairing key functions.

Implements the confirm-value function ``c1`` and the short-term-key
function ``s1`` from Core Spec Vol 3 Part H §2.2.3, verified against the
specification's sample data.  All 128-bit quantities are handled as
**MSB-first** byte strings, matching the spec's notation; callers holding
on-wire (LSB-first) PDUs must reverse them (see
:class:`repro.host.smp.SecurityManager`).

These functions are what CRACKLE (Ryan 2013) brute-forces: with a sniffed
pairing exchange and a guessable TK (zero for Just Works), the STK — and
hence the LTK — falls.  They are included both to support the
encrypted-connection ablation and the paper's countermeasure analysis.
"""

from __future__ import annotations

from repro.crypto.aes import aes128_encrypt_block
from repro.errors import SecurityError


def _xor16(a: bytes, b: bytes) -> bytes:
    if len(a) != 16 or len(b) != 16:
        raise SecurityError("XOR operands must be 16 bytes")
    return bytes(x ^ y for x, y in zip(a, b))


def c1(tk: bytes, rand: bytes, preq: bytes, pres: bytes, iat: int, rat: int,
       ia: bytes, ra: bytes) -> bytes:
    """Legacy-pairing confirm value (spec sample data verified).

    Args:
        tk: 16-byte temporary key (all zero for Just Works).
        rand: 16-byte pairing random, MSB-first.
        preq: 7-byte Pairing Request, MSB-first (reverse of wire order).
        pres: 7-byte Pairing Response, MSB-first.
        iat: initiating address type (0 public, 1 random).
        rat: responding address type.
        ia: 6-byte initiating address, MSB-first.
        ra: 6-byte responding address, MSB-first.

    Returns:
        The 16-byte confirm value, MSB-first.
    """
    if len(preq) != 7 or len(pres) != 7:
        raise SecurityError("preq/pres must be 7 bytes each")
    if len(ia) != 6 or len(ra) != 6:
        raise SecurityError("addresses must be 6 bytes each")
    if len(rand) != 16:
        raise SecurityError("pairing random must be 16 bytes")
    # p1 = pres || preq || rat' || iat'  (128-bit, MSB-first).
    p1 = pres + preq + bytes([rat & 1, iat & 1])
    # p2 = padding || ia || ra.
    p2 = bytes(4) + ia + ra
    inner = aes128_encrypt_block(tk, _xor16(rand, p1))
    return aes128_encrypt_block(tk, _xor16(inner, p2))


def s1(tk: bytes, srand: bytes, mrand: bytes) -> bytes:
    """Legacy-pairing short-term key (spec sample data verified).

    ``r' = srand[LSO 8] || mrand[LSO 8]`` — with MSB-first strings the
    least-significant octets are the trailing eight bytes.
    """
    if len(srand) != 16 or len(mrand) != 16:
        raise SecurityError("pairing randoms must be 16 bytes")
    r = srand[8:] + mrand[8:]
    return aes128_encrypt_block(tk, r)


def session_key_from_skd(ltk: bytes, skd_m: int, skd_s: int) -> bytes:
    """LL session key: AES(LTK, SKD) with SKD = SKD_m || SKD_s.

    The two 8-byte session-key diversifier halves are exchanged in
    LL_ENC_REQ / LL_ENC_RSP; the session key encrypts the connection with
    CCM (Core Spec Vol 6 Part B §5.1.3.1).
    """
    if len(ltk) != 16:
        raise SecurityError(f"LTK must be 16 bytes, got {len(ltk)}")
    skd = skd_m.to_bytes(8, "little") + skd_s.to_bytes(8, "little")
    return aes128_encrypt_block(ltk, skd)
