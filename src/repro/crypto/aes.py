"""AES-128 block cipher, encryption direction only (CCM needs no decrypt).

Two implementations share the FIPS-197 S-box:

* the **fast path** (default) uses combined SubBytes/MixColumns T-tables
  (four 256-entry 32-bit tables from :mod:`repro.kernels.tables`) and an
  LRU-cached key schedule, so CCM — which encrypts several blocks per
  frame under one session key — pays for ``expand_key`` once per key
  instead of once per block;
* the **reference path** (:func:`aes128_encrypt_block_reference`) is the
  original table-free round-by-round implementation, retained for
  differential testing.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.errors import SecurityError
from repro.kernels.tables import SBOX, TE0, TE1, TE2, TE3

_SBOX = SBOX  # historical module-local alias

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) with the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


@lru_cache(maxsize=128)
def _key_schedule(key: bytes) -> Tuple[Tuple[bytes, ...], Tuple[int, ...]]:
    """The 11 round keys, both as 16-byte strings and as packed 32-bit
    column words (big-endian, row 0 in the MSB) for the T-table rounds."""
    if len(key) != 16:
        raise SecurityError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = bytearray(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = bytearray(_SBOX[b] for b in temp)  # SubWord
            temp[0] ^= _RCON[i // 4 - 1]
        words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
    round_keys = tuple(b"".join(words[4 * r : 4 * r + 4]) for r in range(11))
    packed = tuple(int.from_bytes(word, "big") for word in words)
    return round_keys, packed


def expand_key(key: bytes) -> List[bytes]:
    """Expand a 16-byte key into the 11 round keys."""
    return list(_key_schedule(key)[0])


def _sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


def _shift_rows(state: bytearray) -> None:
    # State is column-major: byte index = 4*col + row.
    for row in range(1, 4):
        rowvals = [state[4 * col + row] for col in range(4)]
        rowvals = rowvals[row:] + rowvals[:row]
        for col in range(4):
            state[4 * col + row] = rowvals[col]


def _mix_columns(state: bytearray) -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        t = a[0] ^ a[1] ^ a[2] ^ a[3]
        u = a[0]
        state[4 * col + 0] = a[0] ^ t ^ _xtime(a[0] ^ a[1])
        state[4 * col + 1] = a[1] ^ t ^ _xtime(a[1] ^ a[2])
        state[4 * col + 2] = a[2] ^ t ^ _xtime(a[2] ^ a[3])
        state[4 * col + 3] = a[3] ^ t ^ _xtime(a[3] ^ u)


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _encrypt_reference(key: bytes, block: bytes) -> bytes:
    round_keys = _key_schedule(key)[0]
    state = bytearray(block)
    _add_round_key(state, round_keys[0])
    for rnd in range(1, 10):
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[rnd])
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[10])
    return bytes(state)


def _encrypt_ttable(key: bytes, block: bytes) -> bytes:
    words = _key_schedule(key)[1]
    te0, te1, te2, te3 = TE0, TE1, TE2, TE3
    sbox = _SBOX
    s0 = int.from_bytes(block[0:4], "big") ^ words[0]
    s1 = int.from_bytes(block[4:8], "big") ^ words[1]
    s2 = int.from_bytes(block[8:12], "big") ^ words[2]
    s3 = int.from_bytes(block[12:16], "big") ^ words[3]
    for rnd in range(1, 10):
        k = 4 * rnd
        t0 = (te0[s0 >> 24] ^ te1[(s1 >> 16) & 0xFF]
              ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ words[k])
        t1 = (te0[s1 >> 24] ^ te1[(s2 >> 16) & 0xFF]
              ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ words[k + 1])
        t2 = (te0[s2 >> 24] ^ te1[(s3 >> 16) & 0xFF]
              ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ words[k + 2])
        t3 = (te0[s3 >> 24] ^ te1[(s0 >> 16) & 0xFF]
              ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ words[k + 3])
        s0, s1, s2, s3 = t0, t1, t2, t3
    # Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    o0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
          | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ words[40]
    o1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
          | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ words[41]
    o2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
          | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ words[42]
    o3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
          | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ words[43]
    return (o0.to_bytes(4, "big") + o1.to_bytes(4, "big")
            + o2.to_bytes(4, "big") + o3.to_bytes(4, "big"))


#: Active kernel; :func:`repro.kernels.reference_kernels` swaps it.
_encrypt_impl = _encrypt_ttable


def aes128_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128."""
    if len(block) != 16:
        raise SecurityError(f"AES block must be 16 bytes, got {len(block)}")
    return _encrypt_impl(key, block)


def aes128_encrypt_block_reference(key: bytes, block: bytes) -> bytes:
    """Table-free :func:`aes128_encrypt_block`, retained for differential
    testing."""
    if len(block) != 16:
        raise SecurityError(f"AES block must be 16 bytes, got {len(block)}")
    return _encrypt_reference(key, block)
