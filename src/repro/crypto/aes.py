"""AES-128 block cipher, encryption direction only (CCM needs no decrypt).

A straightforward table-free implementation: S-box lookup, ShiftRows,
MixColumns over GF(2^8), and the standard key schedule.  Performance is
adequate for simulation workloads (a few thousand blocks per experiment).
"""

from __future__ import annotations

from repro.errors import SecurityError

_SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76"
    "ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d83115"
    "04c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f84"
    "53d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa8"
    "51a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d1973"
    "60814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479"
    "e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a"
    "703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df"
    "8ca1890dbfe6426841992d0fb054bb16"
)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) with the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def expand_key(key: bytes) -> list[bytes]:
    """Expand a 16-byte key into the 11 round keys."""
    if len(key) != 16:
        raise SecurityError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = bytearray(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = bytearray(_SBOX[b] for b in temp)  # SubWord
            temp[0] ^= _RCON[i // 4 - 1]
        words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
    return [b"".join(words[4 * r : 4 * r + 4]) for r in range(11)]


def _sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


def _shift_rows(state: bytearray) -> None:
    # State is column-major: byte index = 4*col + row.
    for row in range(1, 4):
        rowvals = [state[4 * col + row] for col in range(4)]
        rowvals = rowvals[row:] + rowvals[:row]
        for col in range(4):
            state[4 * col + row] = rowvals[col]


def _mix_columns(state: bytearray) -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        t = a[0] ^ a[1] ^ a[2] ^ a[3]
        u = a[0]
        state[4 * col + 0] = a[0] ^ t ^ _xtime(a[0] ^ a[1])
        state[4 * col + 1] = a[1] ^ t ^ _xtime(a[1] ^ a[2])
        state[4 * col + 2] = a[2] ^ t ^ _xtime(a[2] ^ a[3])
        state[4 * col + 3] = a[3] ^ t ^ _xtime(a[3] ^ u)


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def aes128_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128."""
    if len(block) != 16:
        raise SecurityError(f"AES block must be 16 bytes, got {len(block)}")
    round_keys = expand_key(key)
    state = bytearray(block)
    _add_round_key(state, round_keys[0])
    for rnd in range(1, 10):
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[rnd])
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[10])
    return bytes(state)
