"""Cryptographic primitives for BLE link-layer security (pure Python).

AES-128, AES-CCM authenticated encryption as used by the Link Layer, and
the legacy-pairing confirm/key functions (c1, s1) from the Security
Manager.  Everything is implemented from scratch — no external crypto
dependency — because the reproduction must run offline.
"""

from repro.crypto.aes import aes128_encrypt_block, expand_key
from repro.crypto.ccm import ccm_decrypt, ccm_encrypt
from repro.crypto.pairing import c1, s1, session_key_from_skd
from repro.crypto.session import LinkEncryption, MicError

__all__ = [
    "LinkEncryption",
    "MicError",
    "aes128_encrypt_block",
    "c1",
    "ccm_decrypt",
    "ccm_encrypt",
    "expand_key",
    "s1",
    "session_key_from_skd",
]
