"""AES-CCM authenticated encryption (RFC 3610) as used by the BLE Link Layer.

BLE uses CCM with a 4-byte MIC (M=4) and a 2-byte length field (L=2) over a
13-byte nonce built from the per-direction packet counter and the session
IV.  The MIC is what makes injection into an encrypted connection collapse
to denial of service (paper §IV): an attacker without the session key can
still win the timing race, but the Slave's MIC check fails.
"""

from __future__ import annotations

from repro.crypto.aes import aes128_encrypt_block
from repro.errors import SecurityError

#: BLE's CCM MIC length in bytes.
MIC_LEN = 4
_L = 2  # length-field size


def _xor(a: bytes, b: bytes) -> bytes:
    # Single big-int XOR instead of a per-byte generator; truncates to the
    # shorter input like the zip() it replaces.
    n = min(len(a), len(b))
    return (int.from_bytes(a[:n], "little")
            ^ int.from_bytes(b[:n], "little")).to_bytes(n, "little")


def _check_nonce(nonce: bytes) -> None:
    if len(nonce) != 15 - _L:
        raise SecurityError(f"CCM nonce must be {15 - _L} bytes, got {len(nonce)}")


def _cbc_mac(key: bytes, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
    """Compute the CCM authentication tag (before counter encryption)."""
    flags = (0x40 if aad else 0x00) | (((MIC_LEN - 2) // 2) << 3) | (_L - 1)
    b0 = bytes([flags]) + nonce + len(plaintext).to_bytes(_L, "big")
    blocks = bytearray(b0)
    if aad:
        if len(aad) >= 0xFF00:
            raise SecurityError("AAD too long for the short encoding")
        adata = len(aad).to_bytes(2, "big") + aad
        pad = (-len(adata)) % 16
        blocks += adata + b"\x00" * pad
    pad = (-len(plaintext)) % 16
    blocks += plaintext + b"\x00" * pad
    mac = b"\x00" * 16
    for i in range(0, len(blocks), 16):
        mac = aes128_encrypt_block(key, _xor(mac, bytes(blocks[i : i + 16])))
    return mac[:MIC_LEN]


def _ctr_blocks(key: bytes, nonce: bytes, count: int) -> list[bytes]:
    """Counter-mode keystream blocks A_0 .. A_{count-1}."""
    flags = _L - 1
    out = []
    for i in range(count):
        a_i = bytes([flags]) + nonce + i.to_bytes(_L, "big")
        out.append(aes128_encrypt_block(key, a_i))
    return out


def ccm_encrypt(key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Encrypt and authenticate; returns ciphertext || 4-byte MIC."""
    _check_nonce(nonce)
    tag = _cbc_mac(key, nonce, plaintext, aad)
    n_blocks = 1 + (len(plaintext) + 15) // 16
    stream = _ctr_blocks(key, nonce, n_blocks)
    keystream = b"".join(stream[1:])
    ciphertext = _xor(plaintext, keystream[: len(plaintext)])
    mic = _xor(tag, stream[0][:MIC_LEN])
    return ciphertext + mic


def ccm_decrypt(key: bytes, nonce: bytes, ciphertext_and_mic: bytes,
                aad: bytes = b"") -> bytes:
    """Verify the MIC and decrypt; raises :class:`SecurityError` on failure."""
    _check_nonce(nonce)
    if len(ciphertext_and_mic) < MIC_LEN:
        raise SecurityError("ciphertext shorter than the MIC")
    ciphertext = ciphertext_and_mic[:-MIC_LEN]
    mic = ciphertext_and_mic[-MIC_LEN:]
    n_blocks = 1 + (len(ciphertext) + 15) // 16
    stream = _ctr_blocks(key, nonce, n_blocks)
    keystream = b"".join(stream[1:])
    plaintext = _xor(ciphertext, keystream[: len(ciphertext)])
    expected = _xor(_cbc_mac(key, nonce, plaintext, aad), stream[0][:MIC_LEN])
    if expected != mic:
        raise SecurityError("CCM MIC verification failed")
    return plaintext
