"""Link-Layer encryption session (AES-CCM over data PDUs).

Once the encryption-setup procedure completes, every data-channel PDU with
a non-zero payload is encrypted and carries a 4-byte MIC.  The CCM nonce is
the 39-bit per-direction packet counter plus the direction bit, followed by
the 8-byte session IV (IV_m || IV_s halves).

The consequence for InjectaBLE (paper §IV): an attacker who wins the race
but lacks the session key produces a frame whose MIC cannot verify; the
receiving Link Layer treats this as a fatal security event and tears the
connection down — integrity/confidentiality hold, availability does not.
"""

from __future__ import annotations

from repro.crypto.ccm import MIC_LEN, ccm_decrypt, ccm_encrypt
from repro.errors import SecurityError
from repro.ll.pdu.data import DataHeader, DataPdu


class MicError(SecurityError):
    """MIC verification failed on a received encrypted PDU."""


class LinkEncryption:
    """Per-connection CCM encryption state.

    Args:
        session_key: 16-byte key from
            :func:`repro.crypto.pairing.session_key_from_skd`.
        iv_m: Master's 4-byte IV contribution (from LL_ENC_REQ).
        iv_s: Slave's 4-byte IV contribution (from LL_ENC_RSP).
        is_master: direction bit owner; the Master sets direction 1 on the
            PDUs it sends.
    """

    def __init__(self, session_key: bytes, iv_m: int, iv_s: int, is_master: bool):
        if len(session_key) != 16:
            raise SecurityError("session key must be 16 bytes")
        self.session_key = session_key
        self.iv = iv_m.to_bytes(4, "little") + iv_s.to_bytes(4, "little")
        self.is_master = is_master
        self.tx_counter = 0
        self.rx_counter = 0

    def _nonce(self, counter: int, direction_master: bool) -> bytes:
        if counter >= 1 << 39:
            raise SecurityError("packet counter exhausted")
        packed = counter | (int(direction_master) << 39)
        return packed.to_bytes(5, "little") + self.iv

    @staticmethod
    def _aad(header: DataHeader) -> bytes:
        # First header byte with NESN, SN and MD masked out (they may be
        # changed by retransmission without re-encryption).
        byte0 = header.to_bytes()[0] & 0b11100011
        return bytes([byte0])

    def encrypt_pdu(self, pdu: DataPdu) -> DataPdu:
        """Encrypt a plaintext PDU; empty PDUs pass through unencrypted."""
        if len(pdu.payload) == 0:
            return pdu
        nonce = self._nonce(self.tx_counter, self.is_master)
        self.tx_counter += 1
        ciphertext = ccm_encrypt(
            self.session_key, nonce, pdu.payload, self._aad(pdu.header)
        )
        header = DataHeader(
            pdu.header.llid, pdu.header.nesn, pdu.header.sn, pdu.header.md,
            len(ciphertext),
        )
        return DataPdu(header, ciphertext)

    def decrypt_pdu(self, pdu: DataPdu) -> DataPdu:
        """Decrypt a received PDU; raises :class:`MicError` on MIC failure."""
        if len(pdu.payload) == 0:
            return pdu
        if len(pdu.payload) <= MIC_LEN:
            raise MicError("encrypted PDU shorter than its MIC")
        nonce = self._nonce(self.rx_counter, not self.is_master)
        try:
            plaintext = ccm_decrypt(
                self.session_key, nonce, pdu.payload, self._aad(pdu.header)
            )
        except SecurityError as exc:
            raise MicError(str(exc)) from exc
        self.rx_counter += 1
        header = DataHeader(
            pdu.header.llid, pdu.header.nesn, pdu.header.sn, pdu.header.md,
            len(plaintext),
        )
        return DataPdu(header, plaintext)
