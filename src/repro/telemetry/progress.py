"""Campaign-level progress counters.

A :class:`ProgressTracker` counts unit completions and emits throttled
one-line updates to a stream (typically stderr, keeping stdout clean for
reports).  It is deliberately wall-clock-free: no rates, no ETAs — the
repository's determinism lint bans ambient time reads, and progress
output interleaved with deterministic reports must not vary between
runs beyond the counters themselves.
"""

from __future__ import annotations

from typing import Optional, TextIO


class ProgressTracker:
    """Counts ok/failed/cached unit completions; optionally prints lines.

    Args:
        total: expected number of updates (0 = unknown).
        stream: where to print progress lines (``None`` = count only).
        label: prefix of each line.
        every: print every N-th update (the final update always prints).
    """

    def __init__(self, total: int = 0, stream: Optional[TextIO] = None,
                 label: str = "campaign", every: int = 1) -> None:
        self.stream = stream
        self.label = label
        self.every = max(1, every)
        self.total = total
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.cached = 0

    def reset(self, total: int) -> None:
        """Re-arm for a new batch of ``total`` expected updates."""
        self.total = total
        self.done = self.ok = self.failed = self.cached = 0

    def preload(self, done: int, ok: int, failed: int,
                cached: int = 0) -> None:
        """Seed the counters from work completed before tracking began.

        ``campaign status --follow`` attaches to campaigns mid-flight;
        preloading the journal's counts keeps the printed ``done/total``
        line consistent with the service's own status.
        """
        self.done, self.ok, self.failed, self.cached = done, ok, failed, cached

    def as_dict(self) -> dict:
        """The counters as a plain dict (status payloads, tests)."""
        return {"total": self.total, "done": self.done, "ok": self.ok,
                "failed": self.failed, "cached": self.cached}

    def update(self, status: str, cached: bool = False) -> None:
        """Record one completed unit (``status``: ``"ok"``/``"failed"``)."""
        self.done += 1
        if status == "ok":
            self.ok += 1
        else:
            self.failed += 1
        if cached:
            self.cached += 1
        if self.stream is not None and (
                self.done % self.every == 0 or self.done == self.total):
            print(self.render(), file=self.stream, flush=True)

    def render(self) -> str:
        """One-line summary of the counters."""
        total = str(self.total) if self.total else "?"
        return (f"{self.label}: {self.done}/{total} "
                f"ok={self.ok} failed={self.failed} cached={self.cached}")
