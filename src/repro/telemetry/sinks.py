"""Streaming trace sinks.

A *sink* receives every :class:`~repro.sim.trace.TraceRecord` the moment
it is recorded.  The simulator's :class:`~repro.sim.trace.Trace` owns one
in-memory backend (unbounded list or bounded ring) and forwards each
record to any number of attached sinks, so "keep everything in RAM" is
just one pluggable policy among several:

* :class:`ListSink` — the historical unbounded list (query-friendly);
* :class:`RingSink` — a ``deque(maxlen=...)`` keeping the most recent
  records only, for million-trial campaigns where the tail is all that
  matters;
* :class:`JsonlSink` — streams each record as one JSON line to a file,
  the interchange format ``repro capture --format jsonl`` emits;
* :class:`NullSink` — discards everything (benchmark control).

Sinks are duck-typed against :class:`TraceSink`; anything with
``write(record)`` and ``close()`` works.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterator, Protocol, Union

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.sim.trace import TraceRecord

__all__ = [
    "JsonlSink",
    "ListSink",
    "NullSink",
    "RingSink",
    "TraceSink",
    "read_jsonl",
]


class TraceSink(Protocol):
    """What a trace backend must implement."""

    def write(self, record: "TraceRecord") -> None:
        """Accept one record."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        ...  # pragma: no cover - protocol


class ListSink:
    """Unbounded in-memory sink — the seed repo's original behaviour."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list["TraceRecord"] = []

    def write(self, record: "TraceRecord") -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator["TraceRecord"]:
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()


class RingSink:
    """Bounded in-memory sink keeping the ``max_records`` newest records."""

    __slots__ = ("records", "dropped")

    def __init__(self, max_records: int) -> None:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive: {max_records}")
        self.records: deque["TraceRecord"] = deque(maxlen=max_records)
        #: Records evicted so far (how much history the ring has forgotten).
        self.dropped = 0

    @property
    def max_records(self) -> int:
        """The ring capacity."""
        return self.records.maxlen or 0

    def write(self, record: "TraceRecord") -> None:
        if len(self.records) == self.records.maxlen:
            self.dropped += 1
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator["TraceRecord"]:
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


class NullSink:
    """Discards every record."""

    __slots__ = ()

    def write(self, record: "TraceRecord") -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams records as JSON lines (one object per record).

    Line schema::

        {"time_us": 123.4, "source": "medium", "kind": "tx", "detail": {...}}

    Args:
        destination: a path (opened for writing, closed by :meth:`close`)
            or an already-open text file object (left open).
    """

    def __init__(self, destination: Union[str, Path, IO[str]]) -> None:
        if hasattr(destination, "write"):
            self._file: IO[str] = destination  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(destination, "w", encoding="utf-8")
            self._owns_file = True
        self.written = 0

    def write(self, record: "TraceRecord") -> None:
        json.dump(
            {"time_us": record.time_us, "source": record.source,
             "kind": record.kind, "detail": record.detail},
            self._file, separators=(",", ":"), sort_keys=True, default=str,
        )
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()
        elif not self._file.closed:
            self._file.flush()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: Union[str, Path]) -> list[dict]:
    """Parse a JSONL trace file back into a list of record dicts."""
    out = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
