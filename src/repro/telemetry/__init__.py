"""Telemetry & capture: metrics, streaming trace sinks, PCAP export.

The paper's success heuristic (eq. 7) and the §VII sensitivity analysis
are driven entirely by *what happened on air and when*.  This package is
the system of record for that question:

* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms (tx/rx/collision counts, injection
  attempts-to-success, anchor drift, per-channel airtime).  The disabled
  path is a single attribute check, cheap enough to leave the
  instrumentation permanently compiled into the hot paths.
* :mod:`repro.telemetry.sinks` — the :class:`TraceSink` protocol plus
  list, bounded-ring and streaming-JSONL backends; the simulator's
  :class:`~repro.sim.trace.Trace` forwards every record to any number of
  attached sinks instead of being a mandatory unbounded list.
* :mod:`repro.telemetry.pcap` — a Wireshark-compatible PCAP writer/reader
  pair using Nordic BLE sniffer framing (DLT 272): access address,
  channel, RSSI and CRC verdict per frame, so any simulated connection
  opens directly in Wireshark.
* :mod:`repro.telemetry.capture` — a medium tap collecting every on-air
  frame (with per-connection CRC validation learned from CONNECT_REQs)
  and exporting it as PCAP or JSONL.
* :mod:`repro.telemetry.progress` — wall-clock-free campaign progress
  counters (ok/failed/cached units) with throttled line output.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.telemetry.sinks import (
    JsonlSink,
    ListSink,
    NullSink,
    RingSink,
    TraceSink,
    read_jsonl,
)
from repro.telemetry.pcap import (
    DLT_NORDIC_BLE,
    NordicBleFrame,
    PcapFormatError,
    PcapReader,
    PcapWriter,
    pcap_bytes,
    read_pcap,
    write_pcap,
)
from repro.telemetry.capture import FrameRecorder
from repro.telemetry.progress import ProgressTracker

__all__ = [
    "Counter",
    "DLT_NORDIC_BLE",
    "FrameRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NordicBleFrame",
    "NullSink",
    "PcapFormatError",
    "PcapReader",
    "PcapWriter",
    "ProgressTracker",
    "RingSink",
    "TraceSink",
    "merge_snapshots",
    "pcap_bytes",
    "read_jsonl",
    "read_pcap",
    "write_pcap",
]
