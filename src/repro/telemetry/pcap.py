"""Wireshark-compatible PCAP export/import with Nordic BLE sniffer framing.

The classic libpcap container (magic ``0xA1B2C3D4``, µs timestamps) with
link type **272** (``LINKTYPE_NORDIC_BLE``), the encapsulation Wireshark's
``nordic_ble`` dissector understands — the same framing InternalBlue-style
experimentation stacks use to hand captures to standard tooling.  Each
packet carries the nRF Sniffer protocol-version-2 layout::

    offset  size  field
    0       1     board id
    1       1     header length (6)
    2       1     payload length (everything after the 6-byte header)
    3       1     protocol version (2)
    4       2     packet counter (LE)
    6       1     packet id (0x06 = EVENT_PACKET)
    7       1     flags: bit0 CRC ok, bit1 direction master->slave,
                  bit2 encrypted, bit3 MIC ok
    8       1     channel (0-39)
    9       1     RSSI magnitude (dBm = -value)
    10      2     connection event counter (LE)
    12      4     timestamp, µs (LE)
    16      4     access address (LE)
    20      n     PDU (LL header + payload)
    20+n    3     CRC, LSB first (as transmitted on air)

The reader is strict (magic, link type, truncation and length-consistency
checks raise :class:`PcapFormatError`) and the writer is canonical —
writing what the reader returned reproduces the input byte for byte,
which the golden-file tests pin down.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from io import BytesIO
from pathlib import Path
from typing import IO, Iterable, Union

__all__ = [
    "DLT_NORDIC_BLE",
    "NordicBleFrame",
    "PcapFormatError",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
]

#: LINKTYPE_NORDIC_BLE, the Wireshark ``nordic_ble`` dissector's DLT.
DLT_NORDIC_BLE = 272

#: Classic pcap magic for µs-resolution timestamps.
_PCAP_MAGIC = 0xA1B2C3D4
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_NORDIC_HEADER = struct.Struct("<BBBBHB")
_NORDIC_PAYLOAD = struct.Struct("<BBBHII")

_NORDIC_HEADER_LEN = 6
_PROTOCOL_VERSION = 2
_PACKET_ID_EVENT = 0x06

_FLAG_CRC_OK = 0x01
_FLAG_DIRECTION = 0x02
_FLAG_ENCRYPTED = 0x04
_FLAG_MIC_OK = 0x08


class PcapFormatError(ValueError):
    """The bytes are not a valid Nordic BLE pcap stream."""


@dataclass(frozen=True)
class NordicBleFrame:
    """One captured frame, as framed on disk.

    Attributes:
        time_us: capture timestamp in integer µs (simulated true time).
        access_address: 32-bit access address.
        channel: RF channel 0-39.
        rssi_dbm: signed RSSI; stored on disk as a magnitude byte.
        pdu: LL header + payload bytes.
        crc: 24-bit CRC as transmitted (possibly corrupted in flight).
        crc_ok: the capturer's CRC verdict (flags bit 0).
        master_to_slave: direction flag (flags bit 1).
        encrypted: payload is encrypted (flags bit 2).
        event_counter: connection event counter at capture time.
        board_id: capturing board id (0 for the simulator).
    """

    time_us: int
    access_address: int
    channel: int
    rssi_dbm: int
    pdu: bytes
    crc: int
    crc_ok: bool = True
    master_to_slave: bool = False
    encrypted: bool = False
    event_counter: int = 0
    board_id: int = 0

    @property
    def flags(self) -> int:
        """The on-disk flags byte."""
        return ((_FLAG_CRC_OK if self.crc_ok else 0)
                | (_FLAG_DIRECTION if self.master_to_slave else 0)
                | (_FLAG_ENCRYPTED if self.encrypted else 0))


def _frame_to_payload(frame: NordicBleFrame, packet_counter: int) -> bytes:
    if not 0 <= frame.channel < 40:
        raise PcapFormatError(f"invalid channel: {frame.channel}")
    if not 0 <= frame.crc < 1 << 24:
        raise PcapFormatError(f"CRC out of range: {frame.crc:#x}")
    rssi_magnitude = min(255, max(0, -int(round(frame.rssi_dbm))))
    payload = _NORDIC_PAYLOAD.pack(
        frame.flags, frame.channel, rssi_magnitude,
        frame.event_counter & 0xFFFF, int(frame.time_us) & 0xFFFFFFFF,
        frame.access_address & 0xFFFFFFFF,
    ) + bytes(frame.pdu) + frame.crc.to_bytes(3, "little")
    if len(payload) > 255:
        raise PcapFormatError(f"PDU too long for Nordic framing: "
                              f"{len(frame.pdu)} bytes")
    header = _NORDIC_HEADER.pack(
        frame.board_id, _NORDIC_HEADER_LEN, len(payload), _PROTOCOL_VERSION,
        packet_counter & 0xFFFF, _PACKET_ID_EVENT,
    )
    return header + payload


def _payload_to_frame(data: bytes, time_us: int) -> NordicBleFrame:
    if len(data) < _NORDIC_HEADER.size + 1:
        raise PcapFormatError(f"truncated Nordic header: {len(data)} bytes")
    board_id, hlen, plen, version, _counter, packet_id = \
        _NORDIC_HEADER.unpack_from(data, 0)
    if hlen != _NORDIC_HEADER_LEN or version != _PROTOCOL_VERSION:
        raise PcapFormatError(
            f"unsupported Nordic framing: header len {hlen}, "
            f"protocol version {version}")
    if packet_id != _PACKET_ID_EVENT:
        raise PcapFormatError(f"unsupported packet id: {packet_id:#x}")
    payload = data[_NORDIC_HEADER.size:]
    if len(payload) != plen:
        raise PcapFormatError(
            f"payload length mismatch: header says {plen}, "
            f"record has {len(payload)}")
    if plen < _NORDIC_PAYLOAD.size + 3:
        raise PcapFormatError(f"payload too short for a frame: {plen} bytes")
    flags, channel, rssi_magnitude, event_counter, timestamp, aa = \
        _NORDIC_PAYLOAD.unpack_from(payload, 0)
    if timestamp != time_us & 0xFFFFFFFF:
        raise PcapFormatError(
            f"payload timestamp {timestamp} disagrees with record header "
            f"time {time_us}")
    pdu = bytes(payload[_NORDIC_PAYLOAD.size:-3])
    crc = int.from_bytes(payload[-3:], "little")
    return NordicBleFrame(
        time_us=time_us,
        access_address=aa,
        channel=channel,
        rssi_dbm=-rssi_magnitude,
        pdu=pdu,
        crc=crc,
        crc_ok=bool(flags & _FLAG_CRC_OK),
        master_to_slave=bool(flags & _FLAG_DIRECTION),
        encrypted=bool(flags & _FLAG_ENCRYPTED),
        event_counter=event_counter,
        board_id=board_id,
    )


class PcapWriter:
    """Streams :class:`NordicBleFrame` records into a pcap file.

    Args:
        destination: path (created/truncated) or a binary file object.
        snaplen: advertised snapshot length for the global header.
    """

    def __init__(self, destination: Union[str, Path, IO[bytes]],
                 snaplen: int = 0xFFFF) -> None:
        if hasattr(destination, "write"):
            self._file: IO[bytes] = destination  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(destination, "wb")
            self._owns_file = True
        self._file.write(_GLOBAL_HEADER.pack(
            _PCAP_MAGIC, 2, 4, 0, 0, snaplen, DLT_NORDIC_BLE))
        self.written = 0

    def write_frame(self, frame: NordicBleFrame) -> None:
        """Append one frame as a pcap record."""
        data = _frame_to_payload(frame, self.written)
        time_us = int(frame.time_us)
        self._file.write(_RECORD_HEADER.pack(
            time_us // 1_000_000, time_us % 1_000_000, len(data), len(data)))
        self._file.write(data)
        self.written += 1

    def close(self) -> None:
        """Flush (and close, if the writer opened the file)."""
        if self._owns_file and not self._file.closed:
            self._file.close()
        elif not self._file.closed:
            self._file.flush()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PcapReader:
    """Parses a Nordic BLE pcap stream back into frames."""

    def __init__(self, source: Union[str, Path, IO[bytes]]) -> None:
        if hasattr(source, "read"):
            self._file: IO[bytes] = source  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(source, "rb")
            self._owns_file = True
        header = self._file.read(_GLOBAL_HEADER.size)
        if len(header) != _GLOBAL_HEADER.size:
            raise PcapFormatError("truncated pcap global header")
        magic, _major, _minor, _tz, _sig, _snaplen, network = \
            _GLOBAL_HEADER.unpack(header)
        if magic != _PCAP_MAGIC:
            raise PcapFormatError(f"bad pcap magic: {magic:#010x}")
        if network != DLT_NORDIC_BLE:
            raise PcapFormatError(
                f"not a Nordic BLE capture: link type {network}")

    def __iter__(self) -> "PcapReader":
        return self

    def __next__(self) -> NordicBleFrame:
        header = self._file.read(_RECORD_HEADER.size)
        if not header:
            raise StopIteration
        if len(header) != _RECORD_HEADER.size:
            raise PcapFormatError("truncated pcap record header")
        ts_sec, ts_usec, incl_len, orig_len = _RECORD_HEADER.unpack(header)
        if incl_len != orig_len:
            raise PcapFormatError(
                f"sliced capture not supported: {incl_len} != {orig_len}")
        data = self._file.read(incl_len)
        if len(data) != incl_len:
            raise PcapFormatError("truncated pcap record body")
        return _payload_to_frame(data, ts_sec * 1_000_000 + ts_usec)

    def read_all(self) -> list[NordicBleFrame]:
        """All remaining frames."""
        return list(self)

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_pcap(destination: Union[str, Path, IO[bytes]],
               frames: Iterable[NordicBleFrame]) -> int:
    """Write ``frames`` as a pcap file; returns the number written."""
    with PcapWriter(destination) as writer:
        for frame in frames:
            writer.write_frame(frame)
        return writer.written


def read_pcap(source: Union[str, Path, IO[bytes]]) -> list[NordicBleFrame]:
    """Read every frame of a Nordic BLE pcap file."""
    with PcapReader(source) as reader:
        return reader.read_all()


def pcap_bytes(frames: Iterable[NordicBleFrame]) -> bytes:
    """The full pcap stream for ``frames``, as bytes (for tests)."""
    buffer = BytesIO()
    write_pcap(buffer, frames)
    return buffer.getvalue()
