"""Wideband frame capture over the simulated medium.

A :class:`FrameRecorder` taps the :class:`~repro.sim.medium.Medium` (the
simulated equivalent of an SDR monitor sitting next to the testbed) and
keeps one :class:`~repro.telemetry.pcap.NordicBleFrame` per transmission:

* **CRC verdicts** are exact for connections whose CONNECT_REQ was
  captured (CRCInit learned from it, like the paper's sniffer does) and
  for advertising traffic; data frames under an unknown CRCInit are
  marked good, matching what a real sniffer reports before recovery.
* **Direction** is inferred per access address from connection-event
  timing (the Master opens each event; the Slave answers T_IFS later).
* **RSSI** is what a monitor co-located with the victims would measure:
  the transmit power minus a nominal 1 m free-space loss — captures are
  about *what* was sent *when*; fine-grained fading lives in the medium.

The recorder is bounded (``max_frames`` ring semantics) and exports to
PCAP (:meth:`write_pcap`) or JSONL (:meth:`write_jsonl`).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Optional, Union

from repro.ll.access_address import ADVERTISING_ACCESS_ADDRESS
from repro.ll.pdu.advertising import ConnectReq, decode_advertising_pdu
from repro.phy.crc import ADVERTISING_CRC_INIT, crc24
from repro.phy.signal import RadioFrame
from repro.sim.medium import Medium
from repro.telemetry.pcap import NordicBleFrame, write_pcap

__all__ = ["FrameRecorder"]

#: Free-space loss at the nominal 1 m monitor distance, dB.
_MONITOR_LOSS_DB = 40.0

#: Frames closer than this on one AA belong to one connection event.
_EVENT_GAP_US = 2_000.0


class FrameRecorder:
    """Records every frame put on air, ready for PCAP/JSONL export.

    Args:
        medium: the medium to tap (taps fire at every frame start).
        max_frames: keep only the newest ``max_frames`` (None = unbounded).
        board_id: board id stamped into the Nordic framing.
    """

    def __init__(self, medium: Medium, max_frames: Optional[int] = None,
                 board_id: int = 0) -> None:
        self.board_id = board_id
        self.frames: Deque[NordicBleFrame] = deque(maxlen=max_frames)
        #: Frames evicted by the bound so far.
        self.dropped = 0
        self._crc_inits: dict[int, int] = {}
        self._event_state: dict[int, tuple[float, int]] = {}
        medium.add_tap(self._on_frame)

    # ------------------------------------------------------------------
    # Tap
    # ------------------------------------------------------------------

    def _on_frame(self, frame: RadioFrame) -> None:
        aa = frame.access_address
        if aa == ADVERTISING_ACCESS_ADDRESS:
            crc_ok = crc24(frame.pdu, ADVERTISING_CRC_INIT) == frame.crc
            master_to_slave = False
            event_counter = 0
            self._learn_connection(frame)
        else:
            crc_init = self._crc_inits.get(aa)
            crc_ok = (crc24(frame.pdu, crc_init) == frame.crc
                      if crc_init is not None else True)
            master_to_slave, event_counter = self._advance_event(aa, frame)
        if (self.frames.maxlen is not None
                and len(self.frames) == self.frames.maxlen):
            self.dropped += 1
        self.frames.append(NordicBleFrame(
            time_us=int(round(frame.start_us)),
            access_address=aa,
            channel=frame.channel,
            rssi_dbm=int(round(frame.tx_power_dbm - _MONITOR_LOSS_DB)),
            pdu=bytes(frame.pdu),
            crc=frame.crc,
            crc_ok=crc_ok,
            master_to_slave=master_to_slave,
            event_counter=event_counter,
            board_id=self.board_id,
        ))

    def _learn_connection(self, frame: RadioFrame) -> None:
        """Learn CRCInit (and reset event counting) from a CONNECT_REQ."""
        try:
            pdu = decode_advertising_pdu(frame.pdu)
        except Exception:
            return
        if isinstance(pdu, ConnectReq):
            self._crc_inits[pdu.ll_data.access_address] = pdu.ll_data.crc_init
            self._event_state.pop(pdu.ll_data.access_address, None)

    def _advance_event(self, aa: int,
                       frame: RadioFrame) -> tuple[bool, int]:
        state = self._event_state.get(aa)
        if state is None or frame.start_us - state[0] > _EVENT_GAP_US:
            counter = 0 if state is None else (state[1] + 1) & 0xFFFF
            self._event_state[aa] = (frame.start_us, counter)
            return True, counter
        self._event_state[aa] = (frame.start_us, state[1])
        return False, state[1]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def write_pcap(self, destination: Union[str, Path]) -> int:
        """Export as a Wireshark-compatible pcap; returns frames written."""
        return write_pcap(destination, self.frames)

    def write_jsonl(self, destination: Union[str, Path]) -> int:
        """Export as JSONL (one frame object per line)."""
        with open(destination, "w", encoding="utf-8") as handle:
            for frame in self.frames:
                json.dump(
                    {"time_us": frame.time_us,
                     "access_address": frame.access_address,
                     "channel": frame.channel,
                     "rssi_dbm": frame.rssi_dbm,
                     "pdu": frame.pdu.hex(),
                     "crc": frame.crc,
                     "crc_ok": frame.crc_ok,
                     "master_to_slave": frame.master_to_slave,
                     "event_counter": frame.event_counter},
                    handle, separators=(",", ":"), sort_keys=True)
                handle.write("\n")
        return len(self.frames)

    def __len__(self) -> int:
        return len(self.frames)
