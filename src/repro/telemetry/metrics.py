"""Lightweight metrics: counters, gauges and fixed-bucket histograms.

Design constraints, in order:

1. **The disabled path must be almost free.**  Hot call sites (the medium
   runs once per frame, millions of times per sweep) pre-bind their
   instruments at construction time and guard every update with a single
   ``registry.enabled`` attribute check — no dict lookup, no allocation.
2. **Snapshots must merge.**  Trials run in worker processes; each ships
   its registry snapshot (a plain picklable dict) back with the
   :class:`~repro.experiments.common.TrialResult`, and
   :func:`merge_snapshots` folds any number of them into campaign totals
   deterministically (sum counters and histogram buckets, max gauges), so
   aggregate numbers are identical at any ``jobs`` count.
3. **Histograms are fixed-bucket.**  Bucket bounds are declared at
   creation time; observation is a linear scan over a handful of
   upper bounds — no per-observation allocation, stable merge semantics.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]


class Counter:
    """A monotonically increasing count (float increments allowed, e.g.
    accumulated airtime in µs)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins; merges take the max)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with an implicit +inf overflow bucket.

    Args:
        name: metric name.
        buckets: strictly increasing upper bounds; an observation lands in
            the first bucket whose bound is >= the value, or the overflow
            bucket.  ``counts`` has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r}: buckets must be strictly "
                             f"increasing, got {buckets!r}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named instruments plus the global enable switch.

    Instruments are created lazily and cached by name, so pre-binding at
    component construction is idiomatic::

        self._m_tx = sim.metrics.counter("medium.tx")
        ...
        if sim.metrics.enabled:
            self._m_tx.inc()

    The registry itself always exists (``Simulator`` owns one); only
    :attr:`enabled` decides whether call sites pay for updates.  Disabled
    registries still hand out instruments — a component written against
    the API never needs to special-case telemetry-off runs.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument creation / lookup
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float]) -> Histogram:
        """The histogram called ``name`` (created on first use).

        Re-requesting an existing histogram with different buckets is a
        programming error and raises ``ValueError``.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        elif instrument.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.buckets}, requested {tuple(buckets)}")
        return instrument

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, picklable view of every *touched* instrument.

        Untouched instruments (zero counters, never-set gauges, empty
        histograms) are omitted: a snapshot records what happened, not
        what was wired up.
        """
        return {
            "counters": {c.name: c.value
                         for c in self._counters.values() if c.value},
            "gauges": {g.name: g.value
                       for g in self._gauges.values() if g.value},
            "histograms": {
                h.name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for h in self._histograms.values() if h.count
            },
        }

    def reset(self) -> None:
        """Zero every instrument (bindings stay valid)."""
        for c in self._counters.values():
            c.value = 0
        for g in self._gauges.values():
            g.value = 0.0
        for h in self._histograms.values():
            h.counts = [0] * len(h.counts)
            h.total = 0.0
            h.count = 0


def merge_snapshots(snapshots: Iterable[Optional[Mapping]]) -> dict:
    """Fold registry snapshots into one: counters and histogram buckets
    sum, gauges take the maximum.  ``None`` entries are skipped, so
    mixed-telemetry result lists merge directly.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, hist in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            if merged["buckets"] != list(hist["buckets"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ "
                    f"({merged['buckets']} vs {list(hist['buckets'])})")
            merged["counts"] = [a + b for a, b in
                                zip(merged["counts"], hist["counts"])]
            merged["sum"] += hist["sum"]
            merged["count"] += hist["count"]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
