"""On-air representation of a transmitted frame."""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import MediumError
from repro.phy.modulation import PhyMode, air_time_us

_frame_ids = itertools.count(1)


class RadioFrame:
    """A frame in flight on the simulated medium.

    This is the PHY-level view: raw (already whitened, CRC-appended) PDU
    bytes plus the physical coordinates of the emission.  Link-Layer
    semantics live in :mod:`repro.ll`.

    One instance (plus a per-receiver copy) is allocated for every frame a
    sweep puts on air, so this is a plain ``__slots__`` class rather than a
    dataclass — Python 3.9, the oldest supported interpreter, has no
    ``@dataclass(slots=True)``.

    Attributes:
        access_address: 32-bit access address the frame is addressed under.
        pdu: the PDU bytes (header + payload), *not* whitened — the
            simulator models whitening as transparent and applies corruption
            at the bit level directly.
        crc: the 24-bit CRC as transmitted (possibly corrupted in flight).
        channel: RF channel index 0-39.
        start_us: simulator time at which transmission began.
        tx_power_dbm: transmit power.
        phy: PHY mode, fixing the bit rate.
        sender_id: medium-assigned identifier of the transmitter.
        corrupted: set by the medium when a collision damaged the frame as
            seen by a given receiver (receivers get per-receiver copies).
        frame_id: unique id for tracing.
    """

    __slots__ = (
        "access_address", "pdu", "crc", "channel", "start_us",
        "tx_power_dbm", "phy", "sender_id", "corrupted", "frame_id",
        "duration_us", "end_us",
    )

    def __init__(
        self,
        access_address: int,
        pdu: bytes,
        crc: int,
        channel: int,
        start_us: float,
        tx_power_dbm: float,
        phy: PhyMode = PhyMode.LE_1M,
        sender_id: int = -1,
        corrupted: bool = False,
        frame_id: Optional[int] = None,
    ):
        if not 0 <= access_address < 1 << 32:
            raise MediumError(f"access address out of range: {access_address:#x}")
        if not 0 <= crc < 1 << 24:
            raise MediumError(f"CRC out of range: {crc:#x}")
        if not 0 <= channel < 40:
            raise MediumError(f"invalid channel: {channel}")
        self.access_address = access_address
        self.pdu = pdu
        self.crc = crc
        self.channel = channel
        self.start_us = start_us
        self.tx_power_dbm = tx_power_dbm
        self.phy = phy
        self.sender_id = sender_id
        self.corrupted = corrupted
        self.frame_id = next(_frame_ids) if frame_id is None else frame_id
        # Air time is immutable once the frame exists; the medium reads
        # end_us on every overlap scan, so compute both once.
        self.duration_us = air_time_us(len(pdu), phy)
        self.end_us = start_us + self.duration_us

    def overlaps(self, other: "RadioFrame") -> bool:
        """Whether this frame and ``other`` are on air simultaneously on the
        same channel."""
        if self.channel != other.channel:
            return False
        return self.start_us < other.end_us and other.start_us < self.end_us

    def copy_for_receiver(self) -> "RadioFrame":
        """A per-receiver copy that the medium may mark as corrupted."""
        return RadioFrame(
            access_address=self.access_address,
            pdu=self.pdu,
            crc=self.crc,
            channel=self.channel,
            start_us=self.start_us,
            tx_power_dbm=self.tx_power_dbm,
            phy=self.phy,
            sender_id=self.sender_id,
            corrupted=self.corrupted,
            frame_id=self.frame_id,
        )

    def __repr__(self) -> str:
        return (
            f"RadioFrame(id={self.frame_id}, aa={self.access_address:#010x}, "
            f"ch={self.channel}, t={self.start_us:.1f}us, "
            f"len={len(self.pdu)}, corrupted={self.corrupted})"
        )
