"""PHY modes and on-air timing.

BLE uses Gaussian Frequency Shift Keying with three PHYs: the uncoded
LE 1M (1 Mbit/s) and LE 2M (2 Mbit/s), and LE Coded at 125 or 500 kbit/s.
The quantity the injection attack cares about is the *air time* of a frame,
because the injected frame's duration determines how much of it can collide
with the legitimate Master frame (paper §VII-A).
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError

#: Access address length in bytes (all PHYs).
ACCESS_ADDRESS_LEN = 4
#: CRC length in bytes.
CRC_LEN = 3


class PhyMode(enum.Enum):
    """The three BLE physical layers and their bit rates."""

    LE_1M = "le_1m"
    LE_2M = "le_2m"
    LE_CODED_S2 = "le_coded_s2"
    LE_CODED_S8 = "le_coded_s8"

    @property
    def bits_per_second(self) -> int:
        """Effective payload bit rate of the PHY."""
        return {
            PhyMode.LE_1M: 1_000_000,
            PhyMode.LE_2M: 2_000_000,
            PhyMode.LE_CODED_S2: 500_000,
            PhyMode.LE_CODED_S8: 125_000,
        }[self]

    @property
    def preamble_len(self) -> int:
        """Preamble length in bytes (1 for LE 1M / Coded, 2 for LE 2M)."""
        return 2 if self is PhyMode.LE_2M else 1

    @property
    def us_per_byte(self) -> float:
        """Microseconds needed to transmit one payload byte."""
        return 8.0 * 1_000_000 / self.bits_per_second


def frame_length_bytes(pdu_len: int, phy: PhyMode = PhyMode.LE_1M) -> int:
    """Total over-the-air frame length for a PDU of ``pdu_len`` bytes.

    Adds preamble, access address and CRC.  For LE 1M this matches the
    paper's arithmetic: a 14-byte ATT payload plus 2-byte LL header is a
    16-byte PDU, hence ``1 + 4 + 16 + 3 = 24``; the paper's "22 bytes long
    over the air" counts the PDU + AA + preamble + CRC of its particular
    framing (see tests for the exact paper workload reconstruction).
    """
    if pdu_len < 0:
        raise ConfigurationError(f"negative PDU length: {pdu_len}")
    return phy.preamble_len + ACCESS_ADDRESS_LEN + pdu_len + CRC_LEN


#: (pdu_len, phy) -> air time; every per-receiver frame copy recomputes
#: its duration, so the dense-world hot path hits this dict constantly.
_AIR_TIME_CACHE: dict = {}


def air_time_us(pdu_len: int, phy: PhyMode = PhyMode.LE_1M) -> float:
    """Transmission duration in µs of a frame with a ``pdu_len``-byte PDU.

    The LE Coded PHYs add constant-rate overhead (coding indicator, TERM
    fields); we approximate them by applying the coded bit rate to the whole
    frame, which preserves the ordering LE 2M < LE 1M < Coded used by any
    timing analysis.
    """
    key = (pdu_len, phy)
    cached = _AIR_TIME_CACHE.get(key)
    if cached is None:
        total = frame_length_bytes(pdu_len, phy)
        cached = _AIR_TIME_CACHE[key] = total * phy.us_per_byte
    return cached
