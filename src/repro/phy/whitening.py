"""BLE data whitening.

The Link Layer whitens the PDU and CRC with a 7-bit LFSR (polynomial
x^7 + x^4 + 1) seeded from the RF channel index, to avoid long runs of
identical bits on air.  Whitening is an involution: applying it twice with
the same channel restores the input, which is the property the sniffer
relies on to de-whiten captured frames.
"""

from __future__ import annotations

from repro.errors import CodecError


def whiten(data: bytes, channel_index: int) -> bytes:
    """Whiten (or de-whiten) ``data`` for transmission on ``channel_index``.

    Args:
        data: the PDU+CRC bytes as transmitted least-significant-bit first.
        channel_index: RF channel (0-39) used to seed the LFSR.

    Returns:
        The whitened bytes; applying the function twice is the identity.
    """
    if not 0 <= channel_index < 40:
        raise CodecError(f"invalid channel index for whitening: {channel_index}")
    # Register bits: position 6 (MSB) .. 0; seeded with 1 then the channel
    # index in positions 5..0, per Core Spec Vol 6 Part B §3.2.
    lfsr = 0x40 | channel_index
    out = bytearray(len(data))
    for i, byte in enumerate(data):
        result = 0
        for bit in range(8):  # LSB first on air
            white_bit = (lfsr >> 6) & 1
            # Feedback taps of x^7 + x^4 + 1: bit 0 and bit 4 receive the
            # output bit after the shift.
            lfsr = ((lfsr << 1) & 0x7F) | white_bit
            if white_bit:
                lfsr ^= 1 << 4
            result |= (((byte >> bit) & 1) ^ white_bit) << bit
        out[i] = result
    return bytes(out)
