"""BLE data whitening.

The Link Layer whitens the PDU and CRC with a 7-bit LFSR (polynomial
x^7 + x^4 + 1) seeded from the RF channel index, to avoid long runs of
identical bits on air.  Whitening is an involution: applying it twice with
the same channel restores the input, which is the property the sniffer
relies on to de-whiten captured frames.

The keystream depends only on the channel seed, and the 7-bit LFSR has
period 127 bits, so each channel's stream repeats every 127 *bytes*
(lcm(127, 8) / 8).  The fast path builds that 127-byte base once per
channel and applies it with a single big-int XOR; the original per-bit
LFSR is kept as ``whiten_reference`` for differential testing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CodecError

#: Number of RF channels a whitening seed exists for.
_NUM_CHANNELS = 40

#: Byte period of the whitening keystream: lcm(127 bits, 8) / 8.
_KEYSTREAM_PERIOD = 127

#: Lazily-built 127-byte keystream base per channel.
_KEYSTREAMS: List[Optional[bytes]] = [None] * _NUM_CHANNELS


def _whiten_bitwise(data: bytes, channel_index: int) -> bytes:
    # Register bits: position 6 (MSB) .. 0; seeded with 1 then the channel
    # index in positions 5..0, per Core Spec Vol 6 Part B §3.2.
    lfsr = 0x40 | channel_index
    out = bytearray(len(data))
    for i, byte in enumerate(data):
        result = 0
        for bit in range(8):  # LSB first on air
            white_bit = (lfsr >> 6) & 1
            # Feedback taps of x^7 + x^4 + 1: bit 0 and bit 4 receive the
            # output bit after the shift.
            lfsr = ((lfsr << 1) & 0x7F) | white_bit
            if white_bit:
                lfsr ^= 1 << 4
            result |= (((byte >> bit) & 1) ^ white_bit) << bit
        out[i] = result
    return bytes(out)


def _keystream_base(channel_index: int) -> bytes:
    """The channel's 127-byte keystream period (built once, cached)."""
    base = _KEYSTREAMS[channel_index]
    if base is None:
        # One full period of the LFSR output, as the XOR mask a zero input
        # would produce — i.e. the keystream itself.
        base = _whiten_bitwise(bytes(_KEYSTREAM_PERIOD), channel_index)
        _KEYSTREAMS[channel_index] = base
    return base


def _whiten_table(data: bytes, channel_index: int) -> bytes:
    n = len(data)
    if n == 0:
        return b""
    keystream = _keystream_base(channel_index)
    if n > _KEYSTREAM_PERIOD:
        keystream = keystream * ((n + _KEYSTREAM_PERIOD - 1) // _KEYSTREAM_PERIOD)
    mask = int.from_bytes(keystream[:n], "little")
    return (int.from_bytes(data, "little") ^ mask).to_bytes(n, "little")


#: Active kernel; :func:`repro.kernels.reference_kernels` swaps it.
_whiten_impl = _whiten_table


def whiten(data: bytes, channel_index: int) -> bytes:
    """Whiten (or de-whiten) ``data`` for transmission on ``channel_index``.

    Args:
        data: the PDU+CRC bytes as transmitted least-significant-bit first.
        channel_index: RF channel (0-39) used to seed the LFSR.

    Returns:
        The whitened bytes; applying the function twice is the identity.
    """
    if not 0 <= channel_index < _NUM_CHANNELS:
        raise CodecError(f"invalid channel index for whitening: {channel_index}")
    return _whiten_impl(data, channel_index)


def whiten_reference(data: bytes, channel_index: int) -> bytes:
    """Bit-level :func:`whiten`, retained for differential testing."""
    if not 0 <= channel_index < _NUM_CHANNELS:
        raise CodecError(f"invalid channel index for whitening: {channel_index}")
    return _whiten_bitwise(data, channel_index)
