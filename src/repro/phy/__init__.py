"""BLE physical layer: channels, modulation timing, whitening, CRC, radio propagation."""

from repro.phy.channels import (
    ADVERTISING_CHANNELS,
    DATA_CHANNELS,
    NUM_CHANNELS,
    Channel,
    channel_to_frequency_mhz,
    frequency_mhz_to_channel,
)
from repro.phy.collision import CollisionModel, CollisionOutcome, Overlap
from repro.phy.crc import crc24, crc24_check, crc24_init_from_bytes, reverse_crc24_init
from repro.phy.modulation import PhyMode, air_time_us, frame_length_bytes
from repro.phy.path_loss import PathLossModel, Wall, dbm_to_mw, mw_to_dbm
from repro.phy.signal import RadioFrame
from repro.phy.whitening import whiten

__all__ = [
    "ADVERTISING_CHANNELS",
    "DATA_CHANNELS",
    "NUM_CHANNELS",
    "Channel",
    "CollisionModel",
    "CollisionOutcome",
    "Overlap",
    "PathLossModel",
    "PhyMode",
    "RadioFrame",
    "Wall",
    "air_time_us",
    "channel_to_frequency_mhz",
    "crc24",
    "crc24_check",
    "crc24_init_from_bytes",
    "dbm_to_mw",
    "frame_length_bytes",
    "frequency_mhz_to_channel",
    "mw_to_dbm",
    "reverse_crc24_init",
    "whiten",
]
