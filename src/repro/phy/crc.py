"""BLE CRC-24.

The Link Layer protects every PDU with a 24-bit CRC (polynomial
x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1).  The CRC register is seeded
with ``CRCInit``: 0x555555 on advertising channels, or the connection's
CRCInit value from the CONNECT_REQ on data channels.

This module also implements the *reverse* CRC computation used by sniffers
(Ryan 2013) to recover an unknown CRCInit from captured frames: the LFSR is
run backwards from the observed CRC through the payload bits.

Both directions have two implementations: a byte-wise table-driven fast
path (the default, one 256-entry lookup per byte) and the original
bit-level LFSR kept as the reference for differential testing —
``crc24_reference`` / ``reverse_crc24_init_reference``.  Argument
validation happens once per call, before any per-byte work.
"""

from __future__ import annotations

from repro.errors import CodecError
from repro.kernels.tables import CRC24_REVERSE_TABLE, CRC24_TABLE, REV8

#: CRCInit used on the advertising channels.
ADVERTISING_CRC_INIT = 0x555555

_POLY_TAPS = (0, 1, 3, 4, 6, 9, 10)  # exponents below 24 of the polynomial


# ----------------------------------------------------------------------
# Reference (bit-level) implementations
# ----------------------------------------------------------------------

def _crc24_bitwise(data: bytes, state: int) -> int:
    for byte in data:
        for bit in range(8):
            fb = ((state >> 23) & 1) ^ ((byte >> bit) & 1)
            state = (state << 1) & 0xFFFFFF
            if fb:
                for tap in _POLY_TAPS:
                    state ^= 1 << tap
    return state


def _reverse_crc24_bitwise(data: bytes, state: int) -> int:
    for byte in reversed(data):
        for bit in reversed(range(8)):
            # Forward step was: fb = msb ^ data_bit; state = (state<<1)|0 then
            # xor taps if fb.  Reconstruct fb from the inverse of the taps.
            fb = state & 1  # after shift, bit0 = fb from the x^0 tap (poly has +1)
            if fb:
                for tap in _POLY_TAPS:
                    state ^= 1 << tap
                # undo the shift-in of fb at bit 0 before shifting back
            state >>= 1
            if fb ^ ((byte >> bit) & 1):
                state |= 1 << 23
    return state


# ----------------------------------------------------------------------
# Table-driven fast paths (8 LFSR steps per lookup)
# ----------------------------------------------------------------------

def _crc24_table(data: bytes, state: int) -> int:
    table = CRC24_TABLE
    rev = REV8
    for byte in data:
        state = ((state << 8) & 0xFFFFFF) ^ table[(state >> 16) ^ rev[byte]]
    return state


def _reverse_crc24_table(data: bytes, state: int) -> int:
    table = CRC24_REVERSE_TABLE
    rev = REV8
    for byte in reversed(data):
        state = (state >> 8) ^ table[state & 0xFF] ^ (rev[byte] << 16)
    return state


#: Active kernels; :func:`repro.kernels.reference_kernels` swaps these.
_crc24_impl = _crc24_table
_reverse_crc24_impl = _reverse_crc24_table


def crc24(data: bytes, crc_init: int) -> int:
    """Compute the BLE CRC-24 of ``data`` with the given 24-bit seed.

    Bits of each byte are processed least-significant first, matching the
    on-air bit order.
    """
    if not 0 <= crc_init < 1 << 24:
        raise CodecError(f"CRCInit out of range: {crc_init:#x}")
    return _crc24_impl(data, crc_init)


def crc24_reference(data: bytes, crc_init: int) -> int:
    """Bit-level :func:`crc24`, retained for differential testing."""
    if not 0 <= crc_init < 1 << 24:
        raise CodecError(f"CRCInit out of range: {crc_init:#x}")
    return _crc24_bitwise(data, crc_init)


def crc24_check(data: bytes, crc_value: int, crc_init: int) -> bool:
    """Whether ``crc_value`` is the correct CRC of ``data`` under ``crc_init``."""
    return crc24(data, crc_init) == crc_value


def crc24_init_from_bytes(data: bytes) -> int:
    """Decode a 3-byte little-endian CRCInit field (as in CONNECT_REQ)."""
    if len(data) != 3:
        raise CodecError(f"CRCInit field must be 3 bytes, got {len(data)}")
    return int.from_bytes(data, "little")


def reverse_crc24_init(data: bytes, crc_value: int) -> int:
    """Recover the CRCInit that produced ``crc_value`` over ``data``.

    Runs the CRC LFSR backwards from the final state through the data bits
    in reverse order.  This is the classic technique used to sniff an
    already-established connection whose CONNECT_REQ was missed: capture one
    frame with a valid CRC, reverse it to get CRCInit, then verify against
    further frames.
    """
    if not 0 <= crc_value < 1 << 24:
        raise CodecError(f"CRC value out of range: {crc_value:#x}")
    return _reverse_crc24_impl(data, crc_value)


def reverse_crc24_init_reference(data: bytes, crc_value: int) -> int:
    """Bit-level :func:`reverse_crc24_init`, retained for differential testing."""
    if not 0 <= crc_value < 1 << 24:
        raise CodecError(f"CRC value out of range: {crc_value:#x}")
    return _reverse_crc24_bitwise(data, crc_value)
