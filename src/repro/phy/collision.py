"""Collision and capture-effect model.

When the injected frame and the legitimate Master frame overlap at the
Slave's antenna (situation *b* of the paper's Fig. 5), the outcome depends
on the power ratio and on the instantaneous phase relation between the two
GFSK signals: a sufficiently stronger wanted signal keeps the demodulator
locked (the *capture effect*); nearer power parity the outcome is governed
by the phase difference, as the paper observes ("depending on the phase
difference between the injected and legitimate signals ... along with the
previously mentioned power difference").

FM/GFSK capture is largely all-or-nothing per collision, so the model
draws one survival decision per overlap:

    eff = SIR + phase ~ N(0, σ_phase) − α · overlap_duration
    P(survive) = logistic((eff − threshold) / steepness)

The duration penalty α reflects that a longer exposed region gives more
opportunities for a destructive phase epoch — reproducing the paper's
payload-size result (§VII-B) — while the SIR terms reproduce the distance
and wall results (§VII-C).  Default constants are calibrated so the
equal-distance setups of experiments 1-2 need a low single-digit median
number of attempts, as Figure 9 reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.signal import RadioFrame


@dataclass(frozen=True)
class Overlap:
    """Temporal overlap between a wanted frame and an interferer.

    Attributes:
        start_us: start of the overlapped region.
        end_us: end of the overlapped region.
        sir_db: wanted-signal power minus interferer power at the receiver.
    """

    start_us: float
    end_us: float
    sir_db: float

    @property
    def duration_us(self) -> float:
        """Length of the overlapped region in µs."""
        return max(0.0, self.end_us - self.start_us)


@dataclass(frozen=True)
class CollisionOutcome:
    """Result of resolving one frame against its interferers.

    Attributes:
        survived: whether the frame demodulated correctly end to end.
        overlapped_bits: total number of bits exposed to interference.
        corrupted_bits: bits counted as damaged when the frame failed.
    """

    survived: bool
    overlapped_bits: int
    corrupted_bits: int


@dataclass
class CollisionModel:
    """Capture-effect collision resolution.

    Attributes:
        capture_threshold_db: effective SIR at which survival probability
            is 0.5.
        steepness_db: width of the logistic transition; wide (≈8 dB)
            because phase-dependent capture smears the power threshold.
        phase_sigma_db: standard deviation of the per-collision random
            phase contribution added to the SIR.
        duration_penalty_db_per_100us: capture penalty per 100 µs of
            overlapped signal (longer exposure, more chances to slip).
        floor_survival / ceiling_survival: probability clamps so extreme
            configurations keep a sliver of randomness.
    """

    capture_threshold_db: float = -9.0
    steepness_db: float = 11.0
    phase_sigma_db: float = 4.0
    duration_penalty_db_per_100us: float = 11.0
    floor_survival: float = 1e-3
    ceiling_survival: float = 0.999

    def __post_init__(self) -> None:
        if self.steepness_db <= 0:
            raise ConfigurationError(f"steepness must be > 0: {self.steepness_db}")
        if not 0 <= self.floor_survival <= self.ceiling_survival <= 1:
            raise ConfigurationError(
                "require 0 <= floor_survival <= ceiling_survival <= 1"
            )

    def survival_probability(self, sir_db: float, overlap_duration_us: float,
                             phase_db: float = 0.0) -> float:
        """P(the overlapped region demodulates) for given conditions."""
        effective = (
            sir_db + phase_db
            - self.duration_penalty_db_per_100us * overlap_duration_us / 100.0
        )
        z = (effective - self.capture_threshold_db) / self.steepness_db
        p = 1.0 / (1.0 + math.exp(-z))
        return min(self.ceiling_survival, max(self.floor_survival, p))

    def overlapped_bits(self, wanted: RadioFrame, overlap: Overlap) -> int:
        """Number of bits of ``wanted`` inside the overlapped region."""
        if overlap.duration_us <= 0:
            return 0
        bits_per_us = wanted.phy.bits_per_second / 1_000_000
        return int(math.ceil(overlap.duration_us * bits_per_us))

    def resolve(
        self,
        wanted: RadioFrame,
        overlaps: list[Overlap],
        rng: np.random.Generator,
    ) -> CollisionOutcome:
        """Decide whether ``wanted`` survives its interferers.

        Each overlap gets an independent phase draw and survival decision;
        the frame survives only if every overlapped region does.
        """
        total_bits = 0
        corrupted = 0
        survived = True
        for overlap in overlaps:
            n_bits = self.overlapped_bits(wanted, overlap)
            if n_bits == 0:
                continue
            total_bits += n_bits
            phase = (float(rng.normal(0.0, self.phase_sigma_db))
                     if self.phase_sigma_db > 0 else 0.0)
            p = self.survival_probability(overlap.sir_db, overlap.duration_us,
                                          phase)
            if float(rng.random()) >= p:
                survived = False
                corrupted += n_bits
        return CollisionOutcome(
            survived=survived,
            overlapped_bits=total_bits,
            corrupted_bits=corrupted,
        )
