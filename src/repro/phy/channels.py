"""BLE RF channel plan.

BLE defines 40 channels of 2 MHz in the 2.4 GHz ISM band.  Channels 37, 38
and 39 are advertising channels; channels 0-36 carry connections.  The
mapping between channel *index* and centre frequency is irregular around the
advertising channels, which sit at 2402, 2426 and 2480 MHz to dodge busy
Wi-Fi channels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

NUM_CHANNELS = 40

#: Channel indices reserved for advertising.
ADVERTISING_CHANNELS: tuple[int, ...] = (37, 38, 39)

#: Channel indices usable by connections (data channels).
DATA_CHANNELS: tuple[int, ...] = tuple(range(37))


def channel_to_frequency_mhz(index: int) -> int:
    """Map a BLE channel index (0-39) to its centre frequency in MHz.

    Data channels 0-10 occupy 2404-2424 MHz, data channels 11-36 occupy
    2428-2478 MHz, and advertising channels 37/38/39 sit at 2402/2426/2480.
    """
    if index == 37:
        return 2402
    if index == 38:
        return 2426
    if index == 39:
        return 2480
    if 0 <= index <= 10:
        return 2404 + 2 * index
    if 11 <= index <= 36:
        return 2428 + 2 * (index - 11)
    raise ConfigurationError(f"invalid BLE channel index: {index}")


_FREQ_TO_CHANNEL = {channel_to_frequency_mhz(i): i for i in range(NUM_CHANNELS)}


def frequency_mhz_to_channel(frequency_mhz: int) -> int:
    """Inverse of :func:`channel_to_frequency_mhz`."""
    try:
        return _FREQ_TO_CHANNEL[frequency_mhz]
    except KeyError:
        raise ConfigurationError(f"no BLE channel at {frequency_mhz} MHz") from None


@dataclass(frozen=True)
class Channel:
    """A BLE RF channel.

    Attributes:
        index: channel index, 0-39.
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_CHANNELS:
            raise ConfigurationError(f"invalid BLE channel index: {self.index}")

    @property
    def frequency_mhz(self) -> int:
        """Centre frequency in MHz."""
        return channel_to_frequency_mhz(self.index)

    @property
    def is_advertising(self) -> bool:
        """Whether this is one of the three advertising channels."""
        return self.index in ADVERTISING_CHANNELS

    @property
    def is_data(self) -> bool:
        """Whether this channel can carry connection traffic."""
        return not self.is_advertising

    def whitening_init(self) -> int:
        """Initial value of the data-whitening LFSR for this channel.

        Per the Core Specification the LFSR is seeded with bit 6 set to 1
        and bits 5..0 set to the channel index.
        """
        return 0x40 | self.index

    def __int__(self) -> int:
        return self.index
