"""Radio propagation: log-distance path loss, walls, shadowing.

The paper's distance and wall experiments (§VII-C) manipulate nothing but
the received power of the injected signal at the Slave's antenna.  We model
that with the standard log-distance path-loss law

    PL(d) = PL(d0) + 10 * n * log10(d / d0) + X_sigma + sum(wall losses)

with reference loss ``PL(d0)`` at 1 m, path-loss exponent ``n`` (≈2 in free
space, 2.5-4 indoors) and log-normal shadowing ``X_sigma``.  Walls crossed
by the direct path each add a fixed attenuation (≈6-10 dB for drywall and
brick at 2.4 GHz).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm."""
    if mw <= 0:
        raise ConfigurationError(f"power must be positive, got {mw} mW")
    return 10.0 * math.log10(mw)


@dataclass(frozen=True)
class Wall:
    """A wall crossed by a radio path.

    Attributes:
        attenuation_db: power lost crossing the wall, in dB.  Typical
            interior walls at 2.4 GHz cost 6-10 dB.
    """

    attenuation_db: float = 8.0

    def __post_init__(self) -> None:
        if self.attenuation_db < 0:
            raise ConfigurationError(
                f"wall attenuation must be non-negative: {self.attenuation_db}"
            )


@dataclass
class PathLossModel:
    """Log-distance path-loss with optional log-normal shadowing.

    Attributes:
        reference_loss_db: path loss at the 1 m reference distance.  40 dB
            is a common value for 2.4 GHz.
        exponent: path-loss exponent ``n``; 2.0 free space, ~2.7 indoors.
        shadowing_sigma_db: standard deviation of the log-normal shadowing
            term.  0 disables shadowing.
        min_distance_m: distances below this are clamped to it, avoiding a
            singularity at 0.
    """

    reference_loss_db: float = 40.0
    exponent: float = 2.2
    shadowing_sigma_db: float = 2.0
    min_distance_m: float = 0.1

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError(f"path loss exponent must be > 0: {self.exponent}")
        if self.shadowing_sigma_db < 0:
            raise ConfigurationError(
                f"shadowing sigma must be >= 0: {self.shadowing_sigma_db}"
            )
        if self.min_distance_m <= 0:
            raise ConfigurationError(
                f"min distance must be > 0: {self.min_distance_m}"
            )

    def mean_loss_db(self, distance_m: float, walls: tuple[Wall, ...] = ()) -> float:
        """Deterministic part of the path loss over ``distance_m`` metres."""
        d = max(distance_m, self.min_distance_m)
        loss = self.reference_loss_db + 10.0 * self.exponent * math.log10(d)
        loss += sum(wall.attenuation_db for wall in walls)
        return loss

    def sample_loss_db(
        self,
        distance_m: float,
        rng: Optional[np.random.Generator] = None,
        walls: tuple[Wall, ...] = (),
    ) -> float:
        """Path loss with a shadowing draw from ``rng`` (if sigma > 0)."""
        loss = self.mean_loss_db(distance_m, walls)
        if self.shadowing_sigma_db > 0 and rng is not None:
            loss += float(rng.normal(0.0, self.shadowing_sigma_db))
        return loss

    def received_power_dbm(
        self,
        tx_power_dbm: float,
        distance_m: float,
        rng: Optional[np.random.Generator] = None,
        walls: tuple[Wall, ...] = (),
    ) -> float:
        """Received power for a transmitter at ``tx_power_dbm``."""
        return tx_power_dbm - self.sample_loss_db(distance_m, rng, walls)

    def max_range_m(self, link_budget_db: float) -> float:
        """Largest wall-free distance whose mean loss fits the budget.

        Inverts :meth:`mean_loss_db` (walls only shorten the range, so
        ignoring them keeps the result an upper bound).  The medium's
        spatial index uses this to bound its candidate-receiver radius.
        """
        if link_budget_db <= self.reference_loss_db:
            return self.min_distance_m
        return 10.0 ** (
            (link_budget_db - self.reference_loss_db) / (10.0 * self.exponent)
        )
