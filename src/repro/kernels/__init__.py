"""Table-driven codec kernels.

The per-frame / per-event primitives of the reproduction — CRC-24 (both
directions), data whitening, CSA#2 channel selection and AES-128 — each
have a byte-wise, table-driven fast path and a retained bit-level
reference implementation.  :mod:`repro.kernels.tables` holds the shared
lookup tables; this package front-door adds :func:`reference_kernels`,
a context manager that swaps every fast path back to its reference so
differential tests can compare whole-trial outputs, not just primitives.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.kernels.tables import (
    CRC24_POLY_MASK,
    CRC24_REVERSE_TABLE,
    CRC24_TABLE,
    REV8,
    SBOX,
    TE0,
    TE1,
    TE2,
    TE3,
)

__all__ = [
    "CRC24_POLY_MASK",
    "CRC24_REVERSE_TABLE",
    "CRC24_TABLE",
    "REV8",
    "SBOX",
    "TE0",
    "TE1",
    "TE2",
    "TE3",
    "reference_kernels",
]


@contextmanager
def reference_kernels() -> Iterator[None]:
    """Run everything inside the block on the bit-level reference kernels.

    Swaps the implementation pointers of :mod:`repro.phy.crc`,
    :mod:`repro.phy.whitening`, :mod:`repro.ll.csa2` and
    :mod:`repro.crypto.aes` to the retained reference code, and restores
    the fast paths on exit.  The public entry points (``crc24``,
    ``whiten``, ``Csa2.channel_for_event``, ``aes128_encrypt_block``)
    are unchanged objects, so modules that imported them by value are
    covered too.  In-process only — worker processes of the parallel
    runner are not affected, so differential tests should run serially.
    """
    from repro.crypto import aes
    from repro.ll import csa2
    from repro.phy import crc, whitening

    saved = (crc._crc24_impl, crc._reverse_crc24_impl,
             whitening._whiten_impl, aes._encrypt_impl, csa2._fast_enabled)
    crc._crc24_impl = crc._crc24_bitwise
    crc._reverse_crc24_impl = crc._reverse_crc24_bitwise
    whitening._whiten_impl = whitening._whiten_bitwise
    aes._encrypt_impl = aes._encrypt_reference
    csa2._fast_enabled = False
    try:
        yield
    finally:
        (crc._crc24_impl, crc._reverse_crc24_impl,
         whitening._whiten_impl, aes._encrypt_impl, csa2._fast_enabled) = saved
