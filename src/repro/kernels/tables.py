"""Precomputed lookup tables for the codec fast paths.

Every per-frame / per-event primitive of the reproduction reduces to a
small GF(2)-linear machine: the CRC-24 LFSR, the whitening LFSR, CSA#2's
byte-reverse permutation and AES's SubBytes∘MixColumns round function.
Linearity means eight bit-steps collapse into one 256-entry table lookup,
which is the classic optimisation real sniffer firmware applies (Ryan's
CRC reversal, Cauquil's CSA#2 prediction).  All tables are built once at
import from the same bit-level definitions the reference implementations
use, so a table bug cannot hide from the differential tests.

This module is a leaf: it imports nothing from :mod:`repro`.
"""

from __future__ import annotations

#: The BLE CRC-24 polynomial x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1,
#: as a mask over the 24-bit LFSR state (exponents below 24).
CRC24_POLY_MASK = 0x00065B


def _build_rev8() -> bytes:
    table = bytearray(256)
    for value in range(256):
        rev = 0
        for bit in range(8):
            rev |= ((value >> bit) & 1) << (7 - bit)
        table[value] = rev
    return bytes(table)


#: ``REV8[b]`` is ``b`` with its 8 bits reversed (MSB <-> LSB).
REV8 = _build_rev8()


def _build_crc24_forward() -> tuple:
    """Effect of one data byte on the CRC-24 LFSR, indexed by the XOR of
    the state's top byte with the bit-reversed data byte.

    Derivation: over 8 forward steps the feedback bits are exactly the
    bits of ``(state >> 16) ^ REV8[byte]`` (MSB first) — the polynomial
    taps sit below bit 11, so they cannot reach the top byte within 8
    shifts.  The table entry is the cumulative feedback contribution.
    """
    table = []
    for index in range(256):
        state = index << 16
        for _ in range(8):
            fb = (state >> 23) & 1
            state = (state << 1) & 0xFFFFFF
            if fb:
                state ^= CRC24_POLY_MASK
        table.append(state)
    return tuple(table)


def _build_crc24_reverse() -> tuple:
    """Effect of one data byte on the *backwards* CRC-24 LFSR, indexed by
    the state's low byte (the mirror-image argument of the forward table:
    backward feedback reads bit 0, and no higher bit can reach it within
    8 right-shifts)."""
    table = []
    for index in range(256):
        state = index
        for _ in range(8):
            fb = state & 1
            if fb:
                state ^= CRC24_POLY_MASK
            state >>= 1
            if fb:
                state |= 1 << 23
        table.append(state)
    return tuple(table)


#: Byte-wise CRC-24 step: ``state = ((state << 8) & 0xFFFFFF) ^
#: CRC24_TABLE[(state >> 16) ^ REV8[byte]]``.
CRC24_TABLE = _build_crc24_forward()

#: Byte-wise reverse step (Ryan-2013 CRCInit recovery): ``state =
#: (state >> 8) ^ CRC24_REVERSE_TABLE[state & 0xFF] ^ (REV8[byte] << 16)``.
CRC24_REVERSE_TABLE = _build_crc24_reverse()


# ----------------------------------------------------------------------
# AES
# ----------------------------------------------------------------------

#: The AES S-box (FIPS-197 Figure 7).
SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76"
    "ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d83115"
    "04c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f84"
    "53d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa8"
    "51a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d1973"
    "60814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479"
    "e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a"
    "703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df"
    "8ca1890dbfe6426841992d0fb054bb16"
)


def _build_aes_ttables() -> tuple:
    """Combined SubBytes + MixColumns tables, one per state row.

    ``TE0[x] .. TE3[x]`` hold the MixColumns output column (packed
    big-endian, row 0 in the MSB) produced by an input byte ``x`` sitting
    in rows 0..3 respectively, S-box already applied.
    """
    te0, te1, te2, te3 = [], [], [], []
    for value in range(256):
        s = SBOX[value]
        x2 = (s << 1) ^ (0x11B if s & 0x80 else 0)
        x2 &= 0xFF
        x3 = x2 ^ s
        te0.append((x2 << 24) | (s << 16) | (s << 8) | x3)
        te1.append((x3 << 24) | (x2 << 16) | (s << 8) | s)
        te2.append((s << 24) | (x3 << 16) | (x2 << 8) | s)
        te3.append((s << 24) | (s << 16) | (x3 << 8) | x2)
    return tuple(te0), tuple(te1), tuple(te2), tuple(te3)


TE0, TE1, TE2, TE3 = _build_aes_ttables()
