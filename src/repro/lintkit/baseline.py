"""Baseline files: grandfathered findings that do not fail the gate.

A baseline is a committed JSON file mapping finding fingerprints to a short
human-readable record of what was grandfathered and why.  ``repro lint``
fails only on findings *not* in the baseline, so the gate can be adopted
on a tree with known, reviewed debt while still catching every regression.

Fingerprints hash the checker id, file path and offending source line (see
:func:`repro.lintkit.findings.fingerprint_findings`), so entries survive
line-number drift but die with the line they describe — a stale entry is
reported so it can be pruned.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from repro.lintkit.findings import Finding

#: Schema version of the baseline file format.
BASELINE_VERSION = 1

#: Conventional baseline filename at the repository root.
BASELINE_FILENAME = "lint-baseline.json"


@dataclass
class Baseline:
    """A set of grandfathered finding fingerprints.

    Attributes:
        entries: fingerprint -> metadata (checker, path, snippet, reason).
        path: file the baseline was loaded from, if any.
    """

    entries: Dict[str, Dict[str, str]] = field(default_factory=dict)
    path: Path = None  # type: ignore[assignment]

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def stale(self, findings: List[Finding]) -> List[str]:
        """Baseline fingerprints no longer matched by any finding."""
        live = {f.fingerprint for f in findings}
        return sorted(fp for fp in self.entries if fp not in live)


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file; a missing file yields an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline(entries={}, path=path)
    data = json.loads(path.read_text())
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"malformed baseline entries in {path}")
    return Baseline(entries=entries, path=path)


def save_baseline(path: Path, findings: List[Finding],
                  reason: str = "grandfathered") -> Baseline:
    """Write ``findings`` as a fresh baseline at ``path`` and return it."""
    entries: Dict[str, Dict[str, str]] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        entries[finding.fingerprint] = {
            "checker": finding.checker,
            "path": finding.path,
            "snippet": finding.snippet,
            "reason": reason,
        }
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return Baseline(entries=entries, path=path)


def prune_baseline(baseline: Baseline, stale: List[str]) -> int:
    """Drop ``stale`` fingerprints from ``baseline`` and rewrite its file.

    Unlike :func:`save_baseline` — which rebuilds entries from findings
    and therefore resets every reason to a generic one — this preserves
    the surviving entries byte-for-byte (checker, path, snippet and the
    reviewed reason).  Returns the number of entries removed; the file
    is rewritten only when at least one entry was dropped.
    """
    if baseline.path is None:
        raise ValueError("baseline has no backing file to prune")
    removed = 0
    for fingerprint in stale:
        if baseline.entries.pop(fingerprint, None) is not None:
            removed += 1
    if removed:
        payload = {"version": BASELINE_VERSION, "entries": baseline.entries}
        Path(baseline.path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return removed
