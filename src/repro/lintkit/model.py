"""Parsed-source model shared by the engine and the checkers."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class ModuleSource:
    """One parsed source file.

    Attributes:
        path: absolute path on disk.
        relpath: path relative to the linted root, POSIX separators.
        text: raw source text.
        lines: source split into lines (1-based access via index+1).
        tree: parsed AST.
    """

    path: Path
    relpath: str
    text: str
    lines: List[str]
    tree: ast.Module
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(
        default=None, repr=False, compare=False)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleSource":
        text = path.read_text()
        return cls(
            path=path,
            relpath=path.relative_to(root).as_posix(),
            text=text,
            lines=text.splitlines(),
            tree=ast.parse(text, filename=str(path)),
        )

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the module AST (built lazily, once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node``, innermost first."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)


@dataclass
class Project:
    """All modules under the linted root."""

    root: Path
    modules: List[ModuleSource]

    def in_scope(self, scope: Tuple[str, ...],
                 exempt: Tuple[str, ...] = ()) -> Iterator[ModuleSource]:
        """Modules whose relpath matches ``scope`` and none of ``exempt``.

        A scope entry is a relpath prefix (``"sim/"``), an exact file
        (``"cli.py"``) or ``""`` for everything.
        """
        for module in self.modules:
            if not _matches(module.relpath, scope):
                continue
            if exempt and _matches(module.relpath, exempt):
                continue
            yield module


def _matches(relpath: str, patterns: Tuple[str, ...]) -> bool:
    for pattern in patterns:
        if pattern == "" or relpath == pattern or relpath.startswith(pattern):
            return True
    return False


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, or ``None`` for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def import_table(tree: ast.Module) -> Dict[str, str]:
    """Local alias -> fully qualified module/object name.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime as dt`` maps ``dt -> datetime.datetime``.  Only top-level and
    function-local imports are considered (anything reachable by walk).
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else \
                    alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: keep the suffix only
                base = node.module or ""
            else:
                base = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def resolve_call_target(node: ast.Call, imports: Dict[str, str]
                        ) -> Optional[str]:
    """Fully qualified dotted target of a call, through import aliases.

    ``np.random.rand()`` with ``np -> numpy`` resolves to
    ``numpy.random.rand``; calls on non-Name roots (``self.foo()``)
    resolve to ``None``.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    target = imports.get(head, head)
    return f"{target}.{rest}" if rest else target
