"""Performance-contract checkers.

Two contracts from the perf PRs are load-bearing enough to enforce:

* ``missing-slots`` — classes instantiated per event or per frame (the
  event queue, radio frames, trace records, the medium's per-transmission
  bookkeeping, metric instruments) must declare ``__slots__``: at millions
  of instances per sweep, the per-instance ``__dict__`` costs both
  allocation time and cache locality.
* ``telemetry-guard`` — telemetry must be free when disabled: metric
  instruments are bound once in ``__init__`` and updated behind a single
  ``.enabled`` attribute check, and ``trace.record(...)`` call sites in hot
  packages are guarded by ``trace.enabled`` so a disabled trace costs no
  kwargs-dict allocation (the benchmark suite asserts the disabled path
  stays within 2% of the un-instrumented baseline).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Tuple

from repro.lintkit.checkers.base import (
    Checker,
    enclosing_function,
    is_enabled_guarded,
)
from repro.lintkit.findings import Finding
from repro.lintkit.model import ModuleSource, dotted_name

#: (relpath prefix, class-name regex) pairs that must declare __slots__.
HOT_CLASS_RULES: Tuple[Tuple[str, str], ...] = (
    ("sim/events.py", r".*"),
    ("phy/signal.py", r".*"),
    ("sim/trace.py", r".*Record$"),
    ("sim/medium.py", r"^_"),
    ("telemetry/metrics.py", r"^(Counter|Gauge|Histogram|MetricsRegistry)$"),
)

#: Instrument update methods (Counter.inc, Gauge.set, Histogram.observe).
INSTRUMENT_UPDATES = ("inc", "set", "observe")

#: Registry factory methods that bind instruments.
INSTRUMENT_FACTORIES = ("counter", "gauge", "histogram")


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and \
                    stmt.target.id == "__slots__":
                return True
    for deco in node.decorator_list:
        # @dataclass(slots=True) counts (Python >= 3.10 trees).
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if kw.arg == "slots" and isinstance(kw.value, ast.Constant) \
                        and kw.value.value is True:
                    return True
    return False


class MissingSlotsChecker(Checker):
    """Per-event/per-frame classes must declare ``__slots__``."""

    id = "missing-slots"
    name = "__slots__ on hot-path classes"
    description = (
        "classes instantiated per event/frame must avoid per-instance "
        "__dict__ allocation"
    )
    scope = ("",)

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        rules = [re.compile(pattern)
                 for path, pattern in HOT_CLASS_RULES
                 if module.relpath == path or module.relpath.startswith(path)]
        if not rules:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(rule.search(node.name) for rule in rules):
                continue
            if _declares_slots(node):
                continue
            # Enum/Protocol/exception classes have no per-instance dict cost
            # worth chasing — skip anything with a non-object base.
            if any(isinstance(base, (ast.Name, ast.Attribute))
                   for base in node.bases):
                continue
            yield self.finding(
                module, node,
                f"hot-path class {node.name!r} lacks __slots__ — "
                f"per-instance __dict__ costs allocation and locality at "
                f"millions of instances per sweep",
            )


def _receiver_is_instrument(node: ast.Attribute) -> bool:
    value = node.value
    if isinstance(value, ast.Attribute):
        return value.attr.startswith("_m_")
    if isinstance(value, ast.Name):
        return value.id.startswith("_m_")
    return False


def _receiver_is_trace(node: ast.Attribute) -> bool:
    dotted = dotted_name(node.value)
    if dotted is None:
        return False
    return dotted == "trace" or dotted.endswith(".trace")


class TelemetryGuardChecker(Checker):
    """Telemetry must cost one attribute check when disabled."""

    id = "telemetry-guard"
    name = "telemetry behind a single enabled check"
    description = (
        "bind instruments in __init__, update them and call "
        "trace.record(...) only inside an `if ....enabled:` block"
    )
    scope = ("sim/", "ll/", "core/", "defense/", "devices/", "experiments/")
    exempt = ("sim/trace.py",)

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr in INSTRUMENT_UPDATES and \
                    _receiver_is_instrument(node.func):
                if not is_enabled_guarded(module, node):
                    yield self.finding(
                        module, node,
                        f"instrument update .{attr}() outside an "
                        f"`if ....enabled:` guard — the disabled path must "
                        f"cost one attribute check",
                    )
            elif attr in INSTRUMENT_FACTORIES and \
                    _receiver_is_metrics(node.func):
                func = enclosing_function(module, node)
                in_init = func is not None and func.name == "__init__"
                if not in_init and not is_enabled_guarded(module, node):
                    yield self.finding(
                        module, node,
                        f"instrument bound via .{attr}() outside __init__ — "
                        f"pre-bind instruments once and reuse them on the "
                        f"hot path",
                    )
            elif attr == "record" and _receiver_is_trace(node.func):
                if not is_enabled_guarded(module, node):
                    yield self.finding(
                        module, node,
                        "trace.record(...) outside an `if trace.enabled:` "
                        "guard — a disabled trace must not pay the "
                        "kwargs-dict allocation",
                    )


def _receiver_is_metrics(node: ast.Attribute) -> bool:
    dotted = dotted_name(node.value)
    if dotted is None:
        return False
    terminal = dotted.split(".")[-1]
    return "metrics" in terminal or terminal == "registry"
