"""Documentation-contract checker.

``missing-docstring`` — every *public* module-level function and class in
``src/repro/`` must carry a docstring.  The package is the reference
implementation of the paper's attack model; an undocumented public name
forces the next reader back to the paper (or worse, to guessing).  The
check deliberately stops at module level: methods inherit context from
their class docstring, and private helpers (``_name``) document
themselves by proximity.

Pre-existing debt is grandfathered in ``lint-baseline.json`` (the
fingerprint hashes the ``def``/``class`` line, so entries survive code
motion and die with a rename) — the gate only stops *new* undocumented
public API.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.lintkit.checkers.base import Checker
from repro.lintkit.findings import Finding
from repro.lintkit.model import ModuleSource

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


class MissingDocstringChecker(Checker):
    """Public module-level functions and classes must have docstrings."""

    id = "missing-docstring"
    name = "docstrings on public module-level API"
    description = (
        "public module-level functions and classes must carry a docstring"
    )
    scope = ("",)

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for node in module.tree.body:
            if not isinstance(node, _DEF_NODES):
                continue
            yield from self._check_def(module, node)

    def _check_def(
        self, module: ModuleSource,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef],
    ) -> Iterator[Finding]:
        if not _is_public(node.name):
            return
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            yield self.finding(
                module, node,
                f"public {kind} {node.name!r} lacks a docstring",
            )
