"""Checker registry.

Each checker encodes one project invariant (see the package docstring of
:mod:`repro.lintkit`).  The registry order is the report order for equal
source locations.
"""

from typing import Dict

from repro.lintkit.checkers.base import Checker
from repro.lintkit.checkers.determinism import (
    FloatTimeEqualityChecker,
    NondeterministicCallChecker,
    SetIterationChecker,
)
from repro.lintkit.checkers.docs import MissingDocstringChecker
from repro.lintkit.checkers.perf import MissingSlotsChecker, TelemetryGuardChecker
from repro.lintkit.checkers.process_safety import ResultCaptureChecker
from repro.lintkit.checkers.spec import MagicNumberChecker

#: Every shipped checker, in canonical order.
ALL_CHECKERS = (
    NondeterministicCallChecker(),
    SetIterationChecker(),
    FloatTimeEqualityChecker(),
    MagicNumberChecker(),
    MissingSlotsChecker(),
    TelemetryGuardChecker(),
    ResultCaptureChecker(),
    MissingDocstringChecker(),
)


def checker_index() -> Dict[str, Checker]:
    """Checker id -> instance, for docs and the CLI ``--select`` option."""
    return {checker.id: checker for checker in ALL_CHECKERS}


__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "FloatTimeEqualityChecker",
    "MagicNumberChecker",
    "MissingDocstringChecker",
    "MissingSlotsChecker",
    "NondeterministicCallChecker",
    "ResultCaptureChecker",
    "SetIterationChecker",
    "TelemetryGuardChecker",
    "checker_index",
]
