"""Checker registry.

Each checker encodes one project invariant (see the package docstring of
:mod:`repro.lintkit`).  The registry order is the report order for equal
source locations.
"""

from typing import Dict

from repro.lintkit.checkers.base import Checker
from repro.lintkit.checkers.determinism import (
    FloatTimeEqualityChecker,
    NondeterministicCallChecker,
    SetIterationChecker,
)
from repro.lintkit.checkers.docs import MissingDocstringChecker
from repro.lintkit.checkers.flow import (
    BlockingInAsyncChecker,
    ErrorTaxonomyChecker,
    ProtocolConformanceChecker,
    RngFlowChecker,
)
from repro.lintkit.checkers.perf import MissingSlotsChecker, TelemetryGuardChecker
from repro.lintkit.checkers.process_safety import ResultCaptureChecker
from repro.lintkit.checkers.spec import MagicNumberChecker

#: Every shipped checker, in canonical order.  The flow-aware quartet
#: (call graph + effect fixpoint) comes last; ``--no-flow`` drops it.
ALL_CHECKERS = (
    NondeterministicCallChecker(),
    SetIterationChecker(),
    FloatTimeEqualityChecker(),
    MagicNumberChecker(),
    MissingSlotsChecker(),
    TelemetryGuardChecker(),
    ResultCaptureChecker(),
    MissingDocstringChecker(),
    BlockingInAsyncChecker(),
    RngFlowChecker(),
    ErrorTaxonomyChecker(),
    ProtocolConformanceChecker(),
)


def checker_index() -> Dict[str, Checker]:
    """Checker id -> instance, for docs and the CLI ``--select`` option."""
    return {checker.id: checker for checker in ALL_CHECKERS}


__all__ = [
    "ALL_CHECKERS",
    "BlockingInAsyncChecker",
    "Checker",
    "ErrorTaxonomyChecker",
    "FloatTimeEqualityChecker",
    "MagicNumberChecker",
    "MissingDocstringChecker",
    "MissingSlotsChecker",
    "NondeterministicCallChecker",
    "ProtocolConformanceChecker",
    "ResultCaptureChecker",
    "RngFlowChecker",
    "SetIterationChecker",
    "TelemetryGuardChecker",
    "checker_index",
]
