"""Determinism checkers.

Trial results must be a pure function of the trial config: same seed, same
bytes, at any ``--jobs`` count, on any machine.  Three checkers enforce the
conventions that guarantee it:

* ``nondeterministic-call`` — no ambient entropy or wall clocks in
  simulation code; randomness flows through :mod:`repro.utils.rand` only.
* ``set-iteration`` — no iteration over ``set`` values in hot packages:
  set order depends on insertion/hash history and (for str keys) on
  ``PYTHONHASHSEED``, which differs per worker process.
* ``float-time-eq`` — no exact ``==``/``!=`` on microsecond timestamps;
  drifting clocks make float timestamps meet only approximately
  (compare with a tolerance, as :meth:`Window.contains` does).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.checkers.base import Checker
from repro.lintkit.findings import Finding
from repro.lintkit.model import ModuleSource, import_table, resolve_call_target

#: Modules that may never be imported by deterministic simulation code.
BANNED_MODULES = ("random", "secrets")

#: Fully qualified callables that read ambient entropy or wall clocks.
BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "ambient entropy",
    "uuid.uuid1": "ambient entropy",
    "uuid.uuid4": "ambient entropy",
    # Legacy numpy global-state RNG: unseeded and shared across the process.
    "numpy.random.seed": "global numpy RNG",
    "numpy.random.rand": "global numpy RNG",
    "numpy.random.randn": "global numpy RNG",
    "numpy.random.randint": "global numpy RNG",
    "numpy.random.random": "global numpy RNG",
    "numpy.random.choice": "global numpy RNG",
    "numpy.random.shuffle": "global numpy RNG",
    "numpy.random.permutation": "global numpy RNG",
    "numpy.random.normal": "global numpy RNG",
    "numpy.random.uniform": "global numpy RNG",
}


class NondeterministicCallChecker(Checker):
    """Ban ambient entropy and wall-clock reads outside the RNG facade."""

    id = "nondeterministic-call"
    name = "no ambient entropy or wall clocks"
    description = (
        "simulation code must draw randomness from repro.utils.rand "
        "streams and read time from the simulator clock only"
    )
    scope = ("",)
    # The RNG facade derives streams; the CLI is interactive by nature.
    # The runner/campaign orchestration layer reads wall clocks for
    # watchdog deadlines and retry backoff only — scheduling, never trial
    # bytes — and doccheck drives the CLI.
    exempt = ("utils/rand.py", "cli.py", "runner/executor.py",
              "campaign/", "doccheck.py")

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        imports = import_table(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            module, node,
                            f"import of nondeterministic module "
                            f"{alias.name!r} (use repro.utils.rand streams)",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in BANNED_MODULES and not node.level:
                    yield self.finding(
                        module, node,
                        f"import from nondeterministic module "
                        f"{node.module!r} (use repro.utils.rand streams)",
                    )
            elif isinstance(node, ast.Call):
                target = resolve_call_target(node, imports)
                if target is None:
                    continue
                root = target.split(".")[0]
                if root in BANNED_MODULES:
                    yield self.finding(
                        module, node,
                        f"call to {target}() — nondeterministic module "
                        f"(use repro.utils.rand streams)",
                    )
                elif target in BANNED_CALLS:
                    yield self.finding(
                        module, node,
                        f"call to {target}() — {BANNED_CALLS[target]} "
                        f"(simulation time comes from sim.now; randomness "
                        f"from seeded streams)",
                    )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
        # set algebra: a & b, a | b, a - b, a ^ b of set operands
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class SetIterationChecker(Checker):
    """Ban iteration over sets in order-sensitive hot packages."""

    id = "set-iteration"
    name = "no set-ordered iteration in hot paths"
    description = (
        "iterating a set yields hash order, which varies with "
        "PYTHONHASHSEED and insertion history; sort first or use "
        "dict/list, whose order is deterministic"
    )
    scope = ("sim/", "ll/", "core/")

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        module, it,
                        "iteration over a set — order depends on hashes; "
                        "wrap in sorted() or keep a list/dict",
                    )


def _is_timestamp_expr(node: ast.AST) -> bool:
    """Names/attributes that look like microsecond timestamps."""
    terminal = None
    if isinstance(node, ast.Attribute):
        terminal = node.attr
    elif isinstance(node, ast.Name):
        terminal = node.id
    if terminal is None:
        return False
    return terminal.endswith("_us") or terminal == "now"


#: Largest float literal treated as an ad-hoc tolerance when added to or
#: subtracted from a timestamp inside a comparison.  Genuine offsets
#: (T_IFS, window margins, ...) are all >= 0.5 µs; tolerances are <= 1e-3.
_EPSILON_LITERAL_MAX = 1e-3


def _inline_epsilon_operand(node: ast.AST) -> bool:
    """``ts ± tiny-float-literal``: an ad-hoc epsilon baked into a compare."""
    if not isinstance(node, ast.BinOp) or \
            not isinstance(node.op, (ast.Add, ast.Sub)):
        return False
    for ts_side, lit_side in ((node.left, node.right),
                              (node.right, node.left)):
        if not _is_timestamp_expr(ts_side):
            continue
        if isinstance(lit_side, ast.Constant) \
                and isinstance(lit_side.value, float) \
                and 0.0 < lit_side.value <= _EPSILON_LITERAL_MAX:
            return True
    return False


class FloatTimeEqualityChecker(Checker):
    """Ban exact equality on float microsecond timestamps, and ad-hoc
    inline epsilon literals in timestamp comparisons."""

    id = "float-time-eq"
    name = "no exact equality on µs timestamps"
    description = (
        "timestamps accumulate float error and clock drift; compare "
        "with an explicit tolerance instead of ==/!=, and spell the "
        "tolerance TIME_EPS_US instead of an inline literal"
    )
    scope = ("",)
    # The canonical constant itself lives in sim/events.py.
    exempt = ("sim/events.py",)

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    left_ts = _is_timestamp_expr(left)
                    right_ts = _is_timestamp_expr(right)
                    float_literal = any(
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        for side in (left, right)
                    )
                    if (left_ts and right_ts) or \
                            ((left_ts or right_ts) and float_literal):
                        yield self.finding(
                            module, node,
                            "exact ==/!= on a µs timestamp — use an explicit "
                            "tolerance (abs(a - b) <= eps)",
                        )
                        break
                elif _inline_epsilon_operand(left) or \
                        _inline_epsilon_operand(right):
                    yield self.finding(
                        module, node,
                        "inline epsilon literal in a time comparison — "
                        "use the canonical sim.events.TIME_EPS_US",
                    )
                    break
