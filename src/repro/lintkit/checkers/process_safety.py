"""Process-safety checker: cached results must not capture world objects.

Trial results cross two boundaries: the pickle hop back from worker
processes (``--jobs N``) and the on-disk
:class:`~repro.runner.cache.ResultCache` replayed by later runs.  A result
that captures a ``Simulator``, ``Medium`` or ``Trace`` reference drags the
whole world graph through pickle — slow at best, unpicklable (lambdas,
event handlers) or semantics-breaking (replaying a stale simulator) at
worst.

The checker finds every *result class* — dataclasses matching
``.*(Result|Trial)$`` under ``experiments/`` — and walks the annotation
graph transitively (``TrialResult -> InjectionReport -> AttemptRecord``),
flagging any reachable field whose annotation references a live-world type
or a ``Callable`` (closures do not pickle).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set, Tuple

from repro.lintkit.checkers.base import Checker
from repro.lintkit.findings import Finding
from repro.lintkit.model import ModuleSource, Project

#: Type names that must never be reachable from a cached result.
BANNED_TYPES = (
    "Simulator",
    "Medium",
    "Trace",
    "EventQueue",
    "Transceiver",
    "RngStreams",
    "MetricsRegistry",
    "Attacker",
    "FakeMaster",
    "FakeSlave",
    "Callable",
)

#: (relpath prefix, class-name regex) pairs designating result roots.
RESULT_ROOT_RULES: Tuple[Tuple[str, str], ...] = (
    ("experiments/", r".*(Result|Trial)$"),
)


def _annotation_identifiers(annotation: ast.AST) -> List[str]:
    """Every plain/terminal identifier mentioned in an annotation."""
    names: List[str] = []
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotation fragments: "Optional[Simulator]".
            names.extend(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", sub.value))
    return names


class _ClassInfo:
    __slots__ = ("module", "node", "fields")

    def __init__(self, module: ModuleSource, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        #: (AnnAssign node, field name, identifiers in its annotation)
        self.fields: List[Tuple[ast.AnnAssign, str, List[str]]] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                self.fields.append((
                    stmt,
                    stmt.target.id,
                    _annotation_identifiers(stmt.annotation),
                ))


class ResultCaptureChecker(Checker):
    """Cached trial results must stay picklable plain data."""

    id = "result-capture"
    name = "no live-world references in cached results"
    description = (
        "objects returned from trial functions and stored in the "
        "ResultCache must not reference Simulator/Medium/Trace/callbacks"
    )
    scope = ("",)

    def run(self, project: Project) -> Iterator[Finding]:
        classes: Dict[str, _ClassInfo] = {}
        for module in project.in_scope(self.scope, self.exempt):
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    # First definition wins; class names are unique enough
                    # within the package for this analysis.
                    classes.setdefault(node.name, _ClassInfo(module, node))

        roots = [
            name
            for name, info in classes.items()
            if any(
                (info.module.relpath.startswith(path)
                 or info.module.relpath == path)
                and re.search(pattern, name)
                for path, pattern in RESULT_ROOT_RULES
            )
        ]

        seen: Set[str] = set()
        queue = sorted(roots)
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = classes[name]
            for stmt, field_name, identifiers in info.fields:
                for ident in identifiers:
                    if ident in BANNED_TYPES:
                        yield self.finding(
                            info.module, stmt,
                            f"result field {name}.{field_name} is annotated "
                            f"with {ident} — cached results must not "
                            f"capture live-world references "
                            f"(store plain data instead)",
                        )
                        break
                for ident in identifiers:
                    if ident in classes and ident not in seen:
                        queue.append(ident)
