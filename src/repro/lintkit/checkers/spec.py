"""Spec-conformance checker: BLE magic numbers come from one place.

The paper's timing attack arithmetic (T_IFS, the 1.25 ms slot, window
widening) and the codec polynomials are defined once, in canonical
constants modules.  Re-typing ``150.0`` at a call site compiles fine and
simulates *almost* right — until someone fixes the constant in one place
and not the other.  This checker flags banned numeric literals anywhere
outside their canonical module.

Literal tables (tuples/lists of three or more numbers, e.g. histogram
buckets or the SCA field-value table) are exempt: the check targets scalar
timing arithmetic, not data tables that merely contain a coincident value.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from repro.lintkit.checkers.base import Checker
from repro.lintkit.findings import Finding
from repro.lintkit.model import ModuleSource

#: (value, type, canonical constant, modules it may literally appear in).
#: Matching is type-exact (150 and 150.0 are separate policies — int/float
#: dict keys would collide, so this is a tuple, not a dict).
MAGIC_NUMBERS: Tuple[Tuple[object, type, str, Tuple[str, ...]], ...] = (
    (150, int, "repro.utils.units.T_IFS_US", ("utils/units.py",)),
    (150.0, float, "repro.utils.units.T_IFS_US", ("utils/units.py",)),
    (1250, int, "repro.utils.units.SLOT_US", ("utils/units.py",)),
    (1250.0, float, "repro.utils.units.SLOT_US", ("utils/units.py",)),
    (32.0, float, "repro.ll.timing.WINDOW_WIDENING_CONSTANT_US",
     ("ll/timing.py", "utils/units.py")),
    (0x00065B, int, "repro.kernels.tables.CRC24_POLY_MASK",
     ("kernels/tables.py", "phy/crc.py")),
    (0x555555, int, "repro.phy.crc.ADVERTISING_CRC_INIT",
     ("phy/crc.py", "kernels/tables.py")),
    (20_000.0, float, "repro.sim.medium.RECENT_HORIZON_US",
     ("sim/medium.py",)),
)

#: Tuples/lists with at least this many numeric elements count as tables.
TABLE_MIN_ELEMENTS = 3


def _in_literal_table(module: ModuleSource, node: ast.AST) -> bool:
    parent = module.parents.get(node)
    while isinstance(parent, (ast.UnaryOp,)):
        parent = module.parents.get(parent)
    if not isinstance(parent, (ast.Tuple, ast.List, ast.Set)):
        return False
    numeric = sum(
        1 for el in parent.elts
        if isinstance(el, ast.Constant) and isinstance(el.value, (int, float))
    )
    return numeric >= TABLE_MIN_ELEMENTS


class MagicNumberChecker(Checker):
    """Ban re-literalised BLE spec constants outside canonical modules."""

    id = "magic-number"
    name = "spec constants come from canonical modules"
    description = (
        "T_IFS/slot/widening constants and codec polynomials must be "
        "imported from utils.units / ll.timing / phy.crc / kernels.tables"
    )
    scope = ("",)
    # The checker's own ban table is the one legitimate home for these
    # literals outside the canonical modules.
    exempt = ("lintkit/",)

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            entry = None
            for magic, magic_type, constant_name, modules in MAGIC_NUMBERS:
                if type(value) is magic_type and magic == value:
                    entry = (constant_name, modules)
                    break
            if entry is None:
                continue
            constant, canonical = entry
            if any(module.relpath == path or module.relpath.startswith(path)
                   for path in canonical):
                continue
            if _in_literal_table(module, node):
                continue
            yield self.finding(
                module, node,
                f"magic number {value!r} — use {constant} instead of "
                f"re-literalising the spec constant",
            )
