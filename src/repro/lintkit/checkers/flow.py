"""Flow-aware checkers: async-safety, RNG purity, error taxonomy,
protocol conformance.

All four consume the project call graph + effect fixpoint from
:mod:`repro.lintkit.flow` (built once per lint run and shared).  They
set ``requires_flow`` so ``repro lint --no-flow`` can skip them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.lintkit.checkers.base import Checker, enclosing_function
from repro.lintkit.findings import Finding, source_line
from repro.lintkit.flow import FlowAnalysis, ensure_analysis
from repro.lintkit.flow.effects import CONTROL_FLOW_EXCEPTIONS
from repro.lintkit.model import ModuleSource, Project, dotted_name

#: Terminal class name rooting the project error taxonomy.
TAXONOMY_ROOT = "ReproError"

#: Functions whose escaping exceptions must stay inside the taxonomy:
#: the retry/quarantine classifier and every service entry point.
#: Matched by (relpath suffix, qualname) so fixture trees mirroring the
#: live layout exercise the same rules.
TAXONOMY_ENTRYPOINTS: Tuple[Tuple[str, str], ...] = (
    ("runner/executor.py", "run_units_robust"),
    ("runner/executor.py", "run_unit_robust"),
    ("campaign/service/worker.py", "run_worker"),
    ("campaign/service/worker.py", "worker_entry"),
    ("campaign/service/coordinator.py", "Coordinator.handle_message"),
    ("campaign/service/server.py", "ServiceServer._handle_connection"),
)

#: Peer sides of the worker protocol: (sender-side suffixes,
#: handler-side suffixes, direction label).
_WORKER_FILES = ("campaign/service/worker.py",)
_COORDINATOR_FILES = ("campaign/service/coordinator.py",
                      "campaign/service/server.py")

#: Relpath prefixes considered telemetry/trace/reporting code for the
#: RNG-purity rule.
RNG_PURE_PREFIXES = ("telemetry/", "analysis/")


def _module_map(project: Project) -> Dict[str, ModuleSource]:
    return {module.relpath: module for module in project.modules}


class FlowChecker(Checker):
    """Base for checkers that need the call graph + effect fixpoint."""

    requires_flow = True

    def run(self, project: Project) -> Iterator[Finding]:
        analysis = ensure_analysis(project)
        yield from self.check_flow(project, analysis)

    def check_flow(self, project: Project,
                   analysis: FlowAnalysis) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding_at(self, module: ModuleSource, line: int, col: int,
                   message: str) -> Finding:
        """A :class:`Finding` at an explicit location in ``module``."""
        return Finding(
            checker=self.id,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            snippet=source_line(module.lines, line),
        )


def _render_chain(parts: List[str]) -> str:
    return " -> ".join(parts)


class BlockingInAsyncChecker(FlowChecker):
    """Blocking effect reachable from an ``async def`` without an
    executor hop.

    The PR 8 freeze — a coroutine's ``process.join`` stalling the event
    loop and starving every connected worker — is exactly this shape.
    Both direct blocking primitives inside a coroutine and calls from a
    coroutine into a *sync* function whose transitive effects include
    blocking are flagged at the call site (so ``# lint-ok:`` waivers
    attach where the decision is made).  Awaited expressions and
    references hopped through ``run_in_executor`` are exempt by
    construction; calls into *async* callees are skipped here because
    the callee coroutine gets its own finding at the precise site.
    """

    id = "blocking-in-async"
    name = "Blocking call on the event loop"
    description = (
        "A blocking primitive (sleep, file/socket I/O, subprocess, "
        "process join, sync queue.get) is reachable from an async def "
        "without a run_in_executor hop; the event loop stalls."
    )

    def check_flow(self, project: Project,
                   analysis: FlowAnalysis) -> Iterator[Finding]:
        modules = _module_map(project)
        effects = analysis.effects
        edges_from = analysis.graph.edges_from()
        for fid in sorted(analysis.graph.functions):
            info = analysis.graph.functions[fid]
            if not info.is_async:
                continue
            module = modules.get(info.relpath)
            if module is None or not self._in_scope(info.relpath):
                continue
            seen_sites: Set[Tuple[int, int]] = set()
            for intrinsic in info.intrinsics:
                if intrinsic.effect != "blocking":
                    continue
                site = (intrinsic.line, intrinsic.col)
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                yield self.finding_at(
                    module, intrinsic.line, intrinsic.col,
                    f"blocking call {intrinsic.detail} inside async "
                    f"'{info.qualname}' stalls the event loop; await an "
                    "async equivalent or hop through run_in_executor")
            for edge in edges_from.get(fid, []):
                if edge.kind not in ("call", "ref"):
                    continue
                callee = analysis.graph.functions.get(edge.callee)
                if callee is None or callee.is_async:
                    continue
                if edge.callee not in effects.blocking:
                    continue
                site = (edge.line, edge.col)
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                chain = [callee.qualname] + \
                    effects.blocking_chain(edge.callee)
                yield self.finding_at(
                    module, edge.line, edge.col,
                    f"async '{info.qualname}' calls blocking "
                    f"'{callee.qualname}' ({_render_chain(chain)}); the "
                    "event loop stalls — hop through run_in_executor")

    def _in_scope(self, relpath: str) -> bool:
        if any(relpath.startswith(p) for p in self.exempt):
            return False
        return any(relpath.startswith(p) or p == ""
                   for p in self.scope)


class RngFlowChecker(FlowChecker):
    """RNG draws reachable from telemetry/reporting code, or gated on
    telemetry state.

    Both shapes break the fast-vs-reference engine equivalence: a draw
    issued only when metrics/tracing are enabled (or issued by the
    reporting layer at all) makes substream consumption differ between
    instrumented and bare runs, so trial bytes stop being comparable.
    """

    id = "rng-flow"
    name = "RNG draw on a telemetry-dependent path"
    description = (
        "An RNG substream draw is reachable from telemetry/trace/"
        "reporting code or sits behind a metrics/trace-enabled "
        "conditional; draw counts diverge between instrumented and "
        "bare runs."
    )

    def check_flow(self, project: Project,
                   analysis: FlowAnalysis) -> Iterator[Finding]:
        modules = _module_map(project)
        effects = analysis.effects
        edges_from = analysis.graph.edges_from()
        seen: Set[Tuple[str, int, int]] = set()
        for fid in sorted(analysis.graph.functions):
            info = analysis.graph.functions[fid]
            module = modules.get(info.relpath)
            if module is None:
                continue
            in_pure_zone = info.relpath.startswith(RNG_PURE_PREFIXES)
            for intrinsic in info.intrinsics:
                if intrinsic.effect != "draws-rng":
                    continue
                site = (info.relpath, intrinsic.line, intrinsic.col)
                if site in seen:
                    continue
                if in_pure_zone:
                    seen.add(site)
                    yield self.finding_at(
                        module, intrinsic.line, intrinsic.col,
                        f"telemetry/reporting code '{info.qualname}' "
                        f"draws from an RNG substream "
                        f"({intrinsic.detail}); reporting must not "
                        "consume simulation stream state")
                elif intrinsic.guarded:
                    seen.add(site)
                    yield self.finding_at(
                        module, intrinsic.line, intrinsic.col,
                        f"RNG draw {intrinsic.detail} in "
                        f"'{info.qualname}' is conditional on telemetry "
                        "state; draw counts diverge between "
                        "instrumented and bare runs")
            for edge in edges_from.get(fid, []):
                if edge.kind == "spawn":
                    continue
                if edge.callee not in effects.draws_rng:
                    continue
                site = (info.relpath, edge.line, edge.col)
                if site in seen:
                    continue
                callee = analysis.graph.functions.get(edge.callee)
                callee_name = callee.qualname if callee is not None \
                    else edge.callee
                chain = [callee_name] + effects.rng_chain(edge.callee)
                if in_pure_zone:
                    seen.add(site)
                    yield self.finding_at(
                        module, edge.line, edge.col,
                        f"telemetry/reporting code '{info.qualname}' "
                        f"reaches an RNG draw via "
                        f"{_render_chain(chain)}; reporting must not "
                        "consume simulation stream state")
                elif edge.guarded:
                    seen.add(site)
                    yield self.finding_at(
                        module, edge.line, edge.col,
                        f"call under a telemetry-enabled conditional in "
                        f"'{info.qualname}' reaches an RNG draw via "
                        f"{_render_chain(chain)}; draw counts diverge "
                        "between instrumented and bare runs")


class ErrorTaxonomyChecker(FlowChecker):
    """Escaping exceptions on classifier paths must be ``ReproError``s,
    and broad handlers must not swallow them.

    The retry/quarantine classifier (``run_unit_robust``) and the
    service entry points translate failures into journal verdicts; a
    raw ``ValueError`` escaping them bypasses the taxonomy (the unit is
    neither retried nor quarantined coherently).  Conversely an
    ``except Exception: pass`` around code whose effects include a
    ``ReproError`` raise silently destroys a verdict.
    """

    id = "error-taxonomy"
    name = "Error-taxonomy soundness"
    description = (
        "A non-ReproError exception can escape a retry/quarantine or "
        "service entry point, or a broad except handler swallows "
        "ReproError subclasses raised in its try body."
    )
    #: Broad-handler scan is restricted to orchestration code.
    swallow_scope: Tuple[str, ...] = ("runner/", "campaign/")

    def check_flow(self, project: Project,
                   analysis: FlowAnalysis) -> Iterator[Finding]:
        modules = _module_map(project)
        yield from self._check_entrypoints(modules, analysis)
        yield from self._check_swallows(project, modules, analysis)

    def _check_entrypoints(self, modules: Dict[str, ModuleSource],
                           analysis: FlowAnalysis) -> Iterator[Finding]:
        effects = analysis.effects
        for fid in sorted(analysis.graph.functions):
            info = analysis.graph.functions[fid]
            if not self._is_entrypoint(info.relpath, info.qualname):
                continue
            module = modules.get(info.relpath)
            if module is None:
                continue
            escaping = effects.raises.get(fid, {})
            for exc in sorted(escaping):
                if exc in CONTROL_FLOW_EXCEPTIONS:
                    continue
                if effects.hierarchy.is_taxonomy_member(exc, TAXONOMY_ROOT):
                    continue
                witness = escaping[exc]
                chain = effects.raise_chain(fid, exc)
                detail = _render_chain(chain) if chain else exc
                yield self.finding_at(
                    module, witness.line, 0,
                    f"'{exc}' can escape entry point '{info.qualname}' "
                    f"({detail}); non-{TAXONOMY_ROOT} failures bypass "
                    "the timeout/retry/quarantine classification")

    @staticmethod
    def _is_entrypoint(relpath: str, qualname: str) -> bool:
        return any(
            relpath.endswith(suffix) and qualname == qual
            for suffix, qual in TAXONOMY_ENTRYPOINTS
        )

    def _check_swallows(self, project: Project,
                        modules: Dict[str, ModuleSource],
                        analysis: FlowAnalysis) -> Iterator[Finding]:
        effects = analysis.effects
        for module in project.in_scope(self.swallow_scope, ()):
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Try):
                    continue
                for handler in node.handlers:
                    if not self._is_broad(handler):
                        continue
                    if self._reraises(handler):
                        continue
                    culprit = self._taxonomy_raise_in_body(
                        module, node, analysis)
                    if culprit is None:
                        continue
                    exc, via = culprit
                    yield self.finding_at(
                        module, handler.lineno, handler.col_offset,
                        f"broad except handler swallows '{exc}' "
                        f"raised in its try body ({via}); catch "
                        f"{TAXONOMY_ROOT} separately or re-raise so "
                        "the verdict survives")

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        return isinstance(handler.type, ast.Name) and \
            handler.type.id in ("Exception", "BaseException")

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(sub, ast.Raise)
                   for stmt in handler.body for sub in ast.walk(stmt))

    @staticmethod
    def _handler_types(handler: ast.ExceptHandler) -> List[str]:
        """Terminal class names a handler catches (builder scheme)."""
        if handler.type is None:
            return ["BaseException"]
        types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
            else [handler.type]
        names: List[str] = []
        for t in types:
            name = dotted_name(t)
            if name is not None:
                names.append(name.rsplit(".", 1)[-1])
        return names

    def _taxonomy_raise_in_body(
        self, module: ModuleSource, try_node: ast.Try,
        analysis: FlowAnalysis,
    ) -> Optional[Tuple[str, str]]:
        """First ReproError-subclass raise the try body can produce."""
        effects = analysis.effects
        if not try_node.body:
            return None
        first = try_node.body[0].lineno
        last = max(
            getattr(stmt, "end_lineno", stmt.lineno)
            for stmt in try_node.body
        )
        func = enclosing_function(module, try_node)
        fid = self._fid_for(module, func)
        if fid is None or fid not in analysis.graph.functions:
            return None
        info = analysis.graph.functions[fid]
        for site in info.raises:
            if first <= site.line <= last and \
                    effects.hierarchy.is_taxonomy_member(
                        site.exc, TAXONOMY_ROOT):
                return (site.exc, f"raise at line {site.line}")
        # Handlers of the try under inspection must NOT mask the escape
        # set — the broad handler catching the exception is the finding.
        own_names = frozenset(
            name
            for handler in try_node.handlers
            for name in self._handler_types(handler)
        )
        for edge in analysis.graph.edges_from().get(fid, []):
            if not (first <= edge.line <= last):
                continue
            if edge.kind == "spawn":
                continue
            inner_caught = tuple(
                name for name in edge.caught if name not in own_names
            )
            for exc in sorted(effects.raises.get(edge.callee, {})):
                if effects.hierarchy.caught_by(exc, inner_caught):
                    continue
                if effects.hierarchy.is_taxonomy_member(
                        exc, TAXONOMY_ROOT):
                    callee = analysis.graph.functions.get(edge.callee)
                    via = callee.qualname if callee is not None \
                        else edge.callee
                    return (exc, f"via {via}")
        return None

    @staticmethod
    def _fid_for(
        module: ModuleSource,
        func: Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]],
    ) -> Optional[str]:
        """Graph function id of ``func``, mirroring the builder's
        qualname scheme (``Class.method``, ``outer.<locals>.inner``)."""
        if func is None:
            return None
        parts: List[str] = [func.name]
        current: ast.AST = func
        for ancestor in module.ancestors(func):
            if isinstance(ancestor, ast.ClassDef):
                parts.append(f"{ancestor.name}.")
            elif isinstance(ancestor, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                parts.append(f"{ancestor.name}.<locals>.")
            current = ancestor
        qualname = "".join(reversed(parts))
        return f"{module.relpath}:{qualname}"


class ProtocolConformanceChecker(FlowChecker):
    """Every protocol op literal sent on one side of the worker channel
    has a handler on the peer side, and vice versa.

    The worker protocol is a set of JSON messages tagged by an ``"op"``
    field; a reply the worker does not recognise (PR 8's coordinator can
    answer ``idle``) either trips a defensive error path or silently
    stalls the fleet.  The check is structural: dict literals with a
    constant ``"op"`` key are "sent", comparisons against an ``op``
    expression are "handled"; worker-side sends must be coordinator-side
    handled and coordinator-side sends worker-side handled.
    """

    id = "protocol-conformance"
    name = "Worker-protocol op conformance"
    description = (
        "A message op literal sent by the worker/coordinator has no "
        "matching handler on the peer side, or a handler matches an op "
        "the peer never sends."
    )

    def check_flow(self, project: Project,
                   analysis: FlowAnalysis) -> Iterator[Finding]:
        worker_mods = self._side_modules(project, _WORKER_FILES)
        coord_mods = self._side_modules(project, _COORDINATOR_FILES)
        if not worker_mods or not coord_mods:
            return
        worker_sent = self._sent_ops(worker_mods)
        worker_handled = self._handled_ops(worker_mods)
        coord_sent = self._sent_ops(coord_mods)
        coord_handled = self._handled_ops(coord_mods)
        yield from self._diff(worker_sent, set(coord_handled), "worker",
                              "coordinator", sent=True)
        yield from self._diff(coord_sent, set(worker_handled),
                              "coordinator", "worker", sent=True)
        yield from self._diff(worker_handled, set(coord_sent), "worker",
                              "coordinator", sent=False)
        yield from self._diff(coord_handled, set(worker_sent),
                              "coordinator", "worker", sent=False)

    @staticmethod
    def _side_modules(project: Project,
                      suffixes: Tuple[str, ...]) -> List[ModuleSource]:
        return [
            module for module in project.modules
            if any(module.relpath.endswith(s) for s in suffixes)
        ]

    def _diff(self, ops: Dict[str, List[Tuple[ModuleSource, int, int]]],
              peer_ops: Set[str], side: str, peer: str,
              sent: bool) -> Iterator[Finding]:
        for op in sorted(ops):
            if op in peer_ops:
                continue
            module, line, col = ops[op][0]
            if sent:
                message = (
                    f"op '{op}' sent by the {side} side has no handler "
                    f"on the {peer} side; the peer cannot process it")
            else:
                message = (
                    f"{side}-side handler matches op '{op}' but the "
                    f"{peer} never sends it; dead branch or a missing "
                    "send")
            yield self.finding_at(module, line, col, message)

    @staticmethod
    def _sent_ops(modules: List[ModuleSource]
                  ) -> Dict[str, List[Tuple[ModuleSource, int, int]]]:
        out: Dict[str, List[Tuple[ModuleSource, int, int]]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Dict):
                    continue
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant) and key.value == "op"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                    ):
                        sites = out.setdefault(value.value, [])
                        sites.append((module, node.lineno,
                                      node.col_offset))
        return out

    @classmethod
    def _handled_ops(cls, modules: List[ModuleSource]
                     ) -> Dict[str, List[Tuple[ModuleSource, int, int]]]:
        out: Dict[str, List[Tuple[ModuleSource, int, int]]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Compare) or \
                        len(node.ops) != 1:
                    continue
                if not isinstance(node.ops[0], (ast.Eq, ast.NotEq,
                                                ast.In, ast.NotIn)):
                    continue
                sides = [node.left] + list(node.comparators)
                if not any(cls._is_op_expr(s) for s in sides):
                    continue
                for side in sides:
                    for op in cls._constant_strings(side):
                        sites = out.setdefault(op, [])
                        sites.append((module, node.lineno,
                                      node.col_offset))
        return out

    @staticmethod
    def _is_op_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id == "op":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "op":
            return True
        if isinstance(node, ast.Subscript):
            slc: ast.AST = node.slice
            return isinstance(slc, ast.Constant) and slc.value == "op"
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "get" and node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and \
                first.value == "op"
        return False

    @staticmethod
    def _constant_strings(node: ast.expr) -> List[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value]
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return [
                elt.value for elt in node.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            ]
        return []
