"""Checker base class and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple, Union

from repro.lintkit.findings import Finding, source_line
from repro.lintkit.model import ModuleSource, Project


class Checker:
    """One invariant, checked over the whole project.

    Subclasses set :attr:`id`/:attr:`name`/:attr:`description`, a default
    path :attr:`scope` (+ :attr:`exempt`) relative to the linted root, and
    implement either :meth:`check_module` (the common, per-file case) or
    override :meth:`run` for whole-program analyses.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    #: Relpath prefixes the checker applies to ("" = whole tree).
    scope: Tuple[str, ...] = ("",)
    #: Relpath prefixes exempt from the checker.
    exempt: Tuple[str, ...] = ()
    #: Whether the checker needs the project call graph (flow analysis);
    #: ``repro lint --no-flow`` skips these.
    requires_flow: bool = False

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.in_scope(self.scope, self.exempt):
            yield from self.check_module(module)

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, module: ModuleSource, node: ast.AST, message: str
                ) -> Finding:
        """A :class:`Finding` at ``node``'s location in ``module``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            checker=self.id,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            snippet=source_line(module.lines, line),
        )


def enclosing_function(
    module: ModuleSource, node: ast.AST,
) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    """The innermost enclosing function/async-function node, or ``None``."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_class(module: ModuleSource,
                    node: ast.AST) -> Optional[ast.ClassDef]:
    """The innermost enclosing class node, or ``None``."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def test_mentions_enabled(test: ast.AST) -> bool:
    """Whether an ``if`` test involves an ``.enabled`` flag (or bare name)."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and sub.id == "enabled":
            return True
    return False


def is_enabled_guarded(module: ModuleSource, node: ast.AST) -> bool:
    """Whether ``node`` executes only when a telemetry ``enabled`` flag holds.

    Two accepted shapes:

    * a lexical ``if <...enabled...>:`` ancestor;
    * an early return at the top of the enclosing function:
      ``if not <...>.enabled: return`` before the node's line.
    """
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.If) and test_mentions_enabled(ancestor.test):
            return True
    func = enclosing_function(module, node)
    if func is not None:
        node_line = getattr(node, "lineno", 0)
        for stmt in func.body:
            if getattr(stmt, "lineno", 1 << 30) >= node_line:
                break
            if (
                isinstance(stmt, ast.If)
                and isinstance(stmt.test, ast.UnaryOp)
                and isinstance(stmt.test.op, ast.Not)
                and test_mentions_enabled(stmt.test.operand)
                and len(stmt.body) == 1
                and isinstance(stmt.body[0], ast.Return)
            ):
                return True
    return False
