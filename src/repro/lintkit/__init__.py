"""Project-specific static analysis (``repro lint``).

The reproduction's headline guarantee — trial results bit-identical at any
``--jobs`` count and replayable from the :class:`~repro.runner.cache.ResultCache`
— rests on a handful of conventions that generic linters cannot express:

* all randomness flows through :mod:`repro.utils.rand` (no ``random``, no
  wall clocks, no ``os.urandom`` in simulation code);
* iteration order in hot paths never depends on ``set`` ordering;
* BLE spec constants (T_IFS, the 1.25 ms slot, CRC/whitening polynomials)
  come from the canonical constants modules instead of being re-typed;
* per-event/per-frame classes declare ``__slots__`` and telemetry calls sit
  behind a single ``enabled`` attribute check;
* objects stored in the trial-result cache never capture a ``Simulator``,
  ``Medium`` or ``Trace`` reference (they must survive the pickle hop from
  worker processes and replay across runs).

``repro.lintkit`` encodes each invariant as an AST checker over the
package's own source.  Findings can be *grandfathered* via a committed
baseline file (``lint-baseline.json``) so the gate only fails on **new**
violations, and individual lines can be waived inline with
``# lint-ok: <checker-id> <reason>``.

Programmatic use::

    from repro.lintkit import run_lint
    report = run_lint()             # lints the installed repro package
    assert not report.findings
"""

from repro.lintkit.baseline import (
    Baseline,
    load_baseline,
    prune_baseline,
    save_baseline,
)
from repro.lintkit.checkers import ALL_CHECKERS, checker_index
from repro.lintkit.engine import (
    FlowStats,
    LintReport,
    ModuleSource,
    Project,
    default_package_root,
    run_lint,
)
from repro.lintkit.findings import Finding, fingerprint_findings

__all__ = [
    "ALL_CHECKERS",
    "Baseline",
    "Finding",
    "FlowStats",
    "LintReport",
    "ModuleSource",
    "Project",
    "checker_index",
    "default_package_root",
    "fingerprint_findings",
    "load_baseline",
    "prune_baseline",
    "run_lint",
    "save_baseline",
]
