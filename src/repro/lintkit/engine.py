"""Lint engine: walk a source tree, run checkers, apply the baseline."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.lintkit.baseline import Baseline
from repro.lintkit.checkers import ALL_CHECKERS
from repro.lintkit.checkers.base import Checker
from repro.lintkit.findings import (
    Finding,
    fingerprint_findings,
    source_line,
    suppression_ids,
)
from repro.lintkit.model import ModuleSource, Project

__all__ = [
    "FlowStats",
    "LintReport",
    "ModuleSource",
    "Project",
    "default_package_root",
    "load_project",
    "run_lint",
]


@dataclass
class FlowStats:
    """Call-graph summary of a flow-enabled lint run.

    ``source`` is ``"built"`` (graph constructed this run) or
    ``"cache"`` (loaded from the on-disk graph cache).
    """

    functions: int = 0
    edges: int = 0
    source: str = "built"

    def to_dict(self) -> dict:
        return {
            "functions": self.functions,
            "edges": self.edges,
            "source": self.source,
        }


def default_package_root() -> Path:
    """The installed ``repro`` package directory (the default lint root)."""
    import repro

    return Path(repro.__file__).parent


@dataclass
class LintReport:
    """Outcome of one lint run.

    Attributes:
        root: the linted tree.
        findings: live findings that fail the gate (fingerprinted, sorted).
        baselined: findings suppressed by the baseline file.
        suppressed: findings waived inline via ``# lint-ok:`` comments.
        stale_baseline: baseline fingerprints matching nothing anymore.
        files_checked: number of parsed source files.
        flow: call-graph stats when flow analysis ran, else ``None``.
    """

    root: Path
    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0
    flow: Optional[FlowStats] = None

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no non-baselined findings)."""
        return not self.findings

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.baselined)} baselined, "
            f"{len(self.suppressed)} waived inline, "
            f"{self.files_checked} files)"
        )
        if self.flow is not None:
            lines.append(
                f"flow: {self.flow.functions} functions, "
                f"{self.flow.edges} call edges ({self.flow.source})"
            )
        if self.stale_baseline:
            lines.append(
                f"note: {len(self.stale_baseline)} stale baseline "
                f"entr{'y' if len(self.stale_baseline) == 1 else 'ies'} "
                f"can be pruned"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "counts": {
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
            "flow": self.flow.to_dict() if self.flow is not None else None,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def load_project(root: Path) -> Project:
    """Parse every ``.py`` file under ``root`` (sorted, deterministic)."""
    root = Path(root)
    modules = [
        ModuleSource.parse(path, root)
        for path in sorted(root.rglob("*.py"))
    ]
    return Project(root=root, modules=modules)


def run_lint(
    root: Optional[Path] = None,
    checkers: Sequence[Checker] = ALL_CHECKERS,
    baseline: Optional[Baseline] = None,
    flow: bool = True,
    flow_cache: Optional[Path] = None,
) -> LintReport:
    """Lint the tree under ``root`` and return a :class:`LintReport`.

    Args:
        root: directory to lint; defaults to the installed ``repro``
            package so ``repro lint`` checks itself wherever it runs.
        checkers: checker instances to run (defaults to all).
        baseline: grandfathered findings; ``None`` means empty.
        flow: build the project call graph and run the flow-aware
            checkers; ``False`` drops every ``requires_flow`` checker.
        flow_cache: directory for the serialised call-graph cache
            (keyed by the source-tree hash); ``None`` disables caching.
    """
    if root is None:
        root = default_package_root()
    project = load_project(root)
    module_lines = {m.relpath: m.lines for m in project.modules}

    flow_stats: Optional[FlowStats] = None
    if flow:
        from repro.lintkit.flow import attach_analysis

        analysis = attach_analysis(project, cache_dir=flow_cache)
        flow_stats = FlowStats(
            functions=len(analysis.graph.functions),
            edges=len(analysis.graph.edges),
            source=analysis.source,
        )
    else:
        checkers = [c for c in checkers if not c.requires_flow]

    raw: List[Finding] = []
    for checker in checkers:
        raw.extend(checker.run(project))
    all_findings = fingerprint_findings(raw)

    findings: List[Finding] = []
    baselined: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in all_findings:
        waived = suppression_ids(
            source_line(module_lines.get(finding.path, []), finding.line))
        if waived is not None and finding.checker in waived:
            suppressed.append(finding)
        elif baseline is not None and finding.fingerprint in baseline:
            baselined.append(finding)
        else:
            findings.append(finding)

    stale: List[str] = []
    if baseline is not None:
        stale = baseline.stale(all_findings)
    return LintReport(
        root=Path(root),
        findings=findings,
        baselined=baselined,
        suppressed=suppressed,
        stale_baseline=stale,
        files_checked=len(project.modules),
        flow=flow_stats,
    )


def checker_summary() -> List[Tuple[str, str]]:
    """(id, description) for every shipped checker (docs, ``--help``)."""
    return [(c.id, c.description) for c in ALL_CHECKERS]
