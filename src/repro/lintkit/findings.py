"""Finding records, stable fingerprints and report serialisation."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        checker: checker id, e.g. ``"nondeterministic-call"``.
        path: path of the offending file relative to the linted root
            (POSIX separators, stable across platforms).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: human-readable description of the violation.
        snippet: the stripped source line, used for fingerprinting so
            baselines survive unrelated edits that only shift line numbers.
        fingerprint: content-addressed id (checker + path + snippet +
            occurrence index); filled in by :func:`fingerprint_findings`.
    """

    checker: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    fingerprint: str = field(default="", compare=False)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.checker, self.message)

    def render(self) -> str:
        """``path:line:col [checker] message`` — one line per finding."""
        return f"{self.path}:{self.line}:{self.col} [{self.checker}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def _fingerprint(checker: str, path: str, snippet: str, occurrence: int) -> str:
    digest = hashlib.sha256(
        f"{checker}|{path}|{snippet}|{occurrence}".encode()
    ).hexdigest()
    return digest[:16]


def fingerprint_findings(findings: List[Finding]) -> List[Finding]:
    """Return ``findings`` sorted and with stable fingerprints attached.

    The fingerprint hashes the checker id, the file path and the stripped
    source line — *not* the line number — so a baseline entry keeps
    matching while surrounding code moves.  Identical lines in the same
    file are disambiguated by an occurrence counter (in line order).
    """
    ordered = sorted(findings, key=Finding.sort_key)
    seen: Dict[tuple, int] = {}
    out: List[Finding] = []
    for finding in ordered:
        key = (finding.checker, finding.path, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(
            Finding(
                checker=finding.checker,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                snippet=finding.snippet,
                fingerprint=_fingerprint(
                    finding.checker, finding.path, finding.snippet, occurrence
                ),
            )
        )
    return out


def source_line(lines: List[str], lineno: int) -> str:
    """The stripped source line ``lineno`` (1-based), or ``""``."""
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def suppression_ids(line: str) -> Optional[List[str]]:
    """Checker ids waived by a ``# lint-ok: id[, id...] reason`` comment.

    Returns ``None`` when the line carries no waiver.  Everything after
    the id list is treated as the (mandatory by convention, unenforced)
    human reason.
    """
    marker = "# lint-ok:"
    idx = line.find(marker)
    if idx < 0:
        return None
    rest = line[idx + len(marker):].strip()
    ids: List[str] = []
    for token in rest.replace(",", " ").split():
        # ids are kebab-case; the first non-id-looking token starts the reason
        if token.replace("-", "").isalnum() and not token.isdigit():
            ids.append(token)
        else:
            break
    return ids
