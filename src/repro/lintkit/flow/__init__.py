"""Flow-aware static analysis: project call graph + effect inference.

Layered on the single-file :mod:`repro.lintkit` engine:

* :mod:`repro.lintkit.flow.graph` builds a project-wide call graph
  (imports, re-exports, method dispatch via annotations and the class
  hierarchy, closures/lambdas conservatively);
* :mod:`repro.lintkit.flow.effects` runs a fixpoint over the graph for
  the effect lattice — ``blocking``, ``draws-rng``, ``raises(T)``;
* :mod:`repro.lintkit.flow.cache` persists the graph keyed by the
  source-tree hash so warm lint runs skip the build.

Checkers consume the result through :func:`ensure_analysis`, which
attaches a lazily built :class:`FlowAnalysis` to the ``Project``
instance so one graph serves all four flow checkers in a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.lintkit.flow.cache import (
    default_flow_cache_dir,
    flow_tree_token,
    load_graph,
    store_graph,
)
from repro.lintkit.flow.effects import EffectResults, propagate
from repro.lintkit.flow.graph import FlowGraph, build_graph
from repro.lintkit.model import Project

__all__ = [
    "FlowAnalysis",
    "FlowGraph",
    "EffectResults",
    "attach_analysis",
    "ensure_analysis",
    "default_flow_cache_dir",
    "flow_tree_token",
]

_ATTR = "_flow_analysis"


@dataclass
class FlowAnalysis:
    """Call graph + effect fixpoint for one analysed tree.

    Attributes:
        graph: the project call graph.
        effects: per-function effect sets with witnesses.
        source: ``"built"`` or ``"cache"`` — where the graph came from.
    """

    graph: FlowGraph
    effects: EffectResults
    source: str = "built"


def attach_analysis(project: Project,
                    cache_dir: Optional[Path] = None) -> FlowAnalysis:
    """Build (or load from cache) the flow analysis for ``project``.

    The result is memoised on the ``Project`` instance so repeated calls
    — one per flow checker in a lint run — do the work once.
    """
    existing = getattr(project, _ATTR, None)
    if isinstance(existing, FlowAnalysis):
        return existing
    graph: Optional[FlowGraph] = None
    source = "built"
    token: Optional[str] = None
    if cache_dir is not None:
        token = flow_tree_token(project.root)
        graph = load_graph(cache_dir, token)
        if graph is not None:
            source = "cache"
    if graph is None:
        graph = build_graph(project)
        if cache_dir is not None and token is not None:
            store_graph(cache_dir, token, graph)
    analysis = FlowAnalysis(graph=graph, effects=propagate(graph),
                            source=source)
    setattr(project, _ATTR, analysis)
    return analysis


def ensure_analysis(project: Project) -> FlowAnalysis:
    """The project's flow analysis, building it (uncached) on demand.

    Checkers call this so a single-checker run — e.g. a unit test
    exercising one checker via ``run_lint(root, checkers=[...])`` —
    still gets an analysis even if the engine did not attach one.
    """
    existing = getattr(project, _ATTR, None)
    if isinstance(existing, FlowAnalysis):
        return existing
    return attach_analysis(project)
