"""Project call-graph construction for flow-aware lint checkers.

The builder walks every parsed module of a :class:`~repro.lintkit.model.
Project` twice:

* **pass 1** collects a symbol table — module-level functions, classes
  (methods, annotated attribute types, base classes) — indexed under
  every dotted name the module is importable as (``campaign.engine`` and
  ``repro.campaign.engine`` for a root that is itself a package);
* **pass 2** resolves every call site to zero or more callee functions:
  imported names (through aliases and re-exporting ``__init__`` files),
  ``self``/``cls`` method dispatch through the class hierarchy
  (including subclass overrides), receivers typed by parameter/variable/
  attribute annotations, and closures/lambdas conservatively (a nested
  function or a function reference passed as an argument is treated as
  called).

Resolution is deliberately *partial*: a receiver whose type cannot be
derived from annotations produces no edge (documented limit), while
known-blocking and RNG-drawing primitives are recognised at the call
site itself (see :mod:`repro.lintkit.flow.effects`), so the analysis
stays useful even where types are opaque.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lintkit.model import ModuleSource, Project, dotted_name, import_table

#: Call-edge kinds.  ``call`` — a direct invocation; ``ref`` — a function
#: reference passed as an argument or a nested def/lambda (conservatively
#: assumed to run in the caller's context); ``executor`` — a reference
#: handed to ``run_in_executor`` (runs off-loop: exceptions and RNG draws
#: still surface at the await, blocking does not stall the loop);
#: ``spawn`` — a reference handed to a ``Process``/``Thread`` target
#: (separate execution context: no effects propagate).
EDGE_KINDS = ("call", "ref", "executor", "spawn")

#: Receiver names that make an unresolved ``.join()`` call look like a
#: process/thread join rather than ``str.join``.
_JOIN_RECEIVER = re.compile(r"(proc|process|thread|worker|child|fleet)")

#: Receiver names that make an unresolved ``.get()`` call look like a
#: synchronous ``queue.Queue.get``.
_QUEUE_RECEIVER = re.compile(r"queue")

#: Receiver names that make a draw-method call look like an RNG stream.
_RNG_RECEIVER = re.compile(r"(rng|rand|stream|shadow|noise|drift|jitter)")

#: ``numpy.random.Generator`` draw methods (consume substream state).
_DRAW_METHODS = frozenset({
    "normal", "uniform", "integers", "random", "choice", "shuffle",
    "permutation", "standard_normal", "exponential", "poisson",
    "lognormal", "binomial", "geometric", "gamma", "beta", "rayleigh",
})

#: Fully qualified callables that block the calling thread.
_BLOCKING_TARGETS = {
    "time.sleep": "time.sleep()",
    "os.fsync": "os.fsync()",
    "os.fdatasync": "os.fdatasync()",
    "select.select": "select.select()",
    "socket.create_connection": "socket.create_connection()",
}

#: Module prefixes whose every call blocks (child process round-trips).
_BLOCKING_PREFIXES = ("subprocess.",)

#: ``pathlib.Path`` convenience I/O methods (block on disk).
_PATH_IO_ATTRS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes",
})

#: Call targets that defer a function reference to a thread pool.
_EXECUTOR_ATTRS = frozenset({"run_in_executor"})

#: Call targets that hand a reference to a separate process/thread.
_SPAWN_NAMES = frozenset({"Process", "Thread"})

#: ``if`` tests mentioning any of these tokens gate telemetry, so an RNG
#: draw under them diverges between instrumented and bare runs.
_TELEMETRY_GUARD_TOKENS = ("enabled", "metrics_enabled", "collect_metrics",
                           "trace_enabled")


@dataclass
class Intrinsic:
    """One effect recognised directly at a call/raise site.

    Attributes:
        effect: ``"blocking"`` or ``"draws-rng"``.
        line, col: source location of the site.
        detail: human-readable primitive, e.g. ``"time.sleep()"``.
        guarded: the site sits under a telemetry-``enabled`` conditional.
    """

    effect: str
    line: int
    col: int
    detail: str
    guarded: bool = False


@dataclass
class RaiseSite:
    """One explicit ``raise`` statement inside a function body.

    Attributes:
        exc: terminal exception class name (``"ServiceError"``).
        line: source line of the ``raise``.
        caught: handler type names of enclosing ``try`` bodies at the
            site — exceptions those handlers catch never escape.
    """

    exc: str
    line: int
    caught: Tuple[str, ...] = ()


@dataclass
class FunctionInfo:
    """One function (or method, nested def, lambda) in the project."""

    fid: str
    relpath: str
    qualname: str
    line: int
    col: int
    is_async: bool
    intrinsics: List[Intrinsic] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)


@dataclass
class CallEdge:
    """One resolved call site: ``caller`` may invoke ``callee``.

    Attributes:
        caller, callee: function ids (``relpath:qualname``).
        line, col: location of the call site in the caller's module.
        kind: one of :data:`EDGE_KINDS`.
        awaited: the call expression is directly awaited.
        caught: handler type names of ``try`` bodies enclosing the site.
        guarded: the site sits under a telemetry-``enabled`` conditional.
    """

    caller: str
    callee: str
    line: int
    col: int
    kind: str = "call"
    awaited: bool = False
    caught: Tuple[str, ...] = ()
    guarded: bool = False


@dataclass
class ClassInfo:
    """One class: methods, annotated attribute types, base names."""

    cid: str
    relpath: str
    qualname: str
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class FlowGraph:
    """The project call graph plus the class/exception hierarchy."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    edges: List[CallEdge] = field(default_factory=list)
    #: exception/class name -> base class terminal names (project-wide,
    #: merged across modules; used for ``except`` subtype filtering).
    class_bases: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def edges_from(self) -> Dict[str, List[CallEdge]]:
        """Caller fid -> outgoing edges (computed on demand)."""
        out: Dict[str, List[CallEdge]] = {}
        for edge in self.edges:
            out.setdefault(edge.caller, []).append(edge)
        return out

    def edges_to(self) -> Dict[str, List[CallEdge]]:
        """Callee fid -> incoming edges (computed on demand)."""
        out: Dict[str, List[CallEdge]] = {}
        for edge in self.edges:
            out.setdefault(edge.callee, []).append(edge)
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (for the on-disk cache)."""
        return {
            "functions": [
                {
                    "fid": f.fid, "relpath": f.relpath,
                    "qualname": f.qualname, "line": f.line, "col": f.col,
                    "is_async": f.is_async,
                    "intrinsics": [
                        [i.effect, i.line, i.col, i.detail, i.guarded]
                        for i in f.intrinsics
                    ],
                    "raises": [
                        [r.exc, r.line, list(r.caught)] for r in f.raises
                    ],
                }
                for f in self.functions.values()
            ],
            "classes": [
                {
                    "cid": c.cid, "relpath": c.relpath,
                    "qualname": c.qualname, "bases": list(c.bases),
                    "methods": dict(c.methods),
                    "attr_types": dict(c.attr_types),
                }
                for c in self.classes.values()
            ],
            "edges": [
                [e.caller, e.callee, e.line, e.col, e.kind, e.awaited,
                 list(e.caught), e.guarded]
                for e in self.edges
            ],
            "class_bases": {
                name: list(bases) for name, bases in self.class_bases.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FlowGraph":
        """Rebuild a graph from :meth:`to_dict` output."""
        graph = cls()
        for fd in data.get("functions", []):  # type: ignore[union-attr]
            info = FunctionInfo(
                fid=fd["fid"], relpath=fd["relpath"],
                qualname=fd["qualname"], line=fd["line"], col=fd["col"],
                is_async=fd["is_async"],
                intrinsics=[
                    Intrinsic(effect=i[0], line=i[1], col=i[2],
                              detail=i[3], guarded=i[4])
                    for i in fd["intrinsics"]
                ],
                raises=[
                    RaiseSite(exc=r[0], line=r[1], caught=tuple(r[2]))
                    for r in fd["raises"]
                ],
            )
            graph.functions[info.fid] = info
        for cd in data.get("classes", []):  # type: ignore[union-attr]
            cinfo = ClassInfo(
                cid=cd["cid"], relpath=cd["relpath"],
                qualname=cd["qualname"], bases=tuple(cd["bases"]),
                methods=dict(cd["methods"]),
                attr_types=dict(cd["attr_types"]),
            )
            graph.classes[cinfo.cid] = cinfo
        for ed in data.get("edges", []):  # type: ignore[union-attr]
            graph.edges.append(CallEdge(
                caller=ed[0], callee=ed[1], line=ed[2], col=ed[3],
                kind=ed[4], awaited=ed[5], caught=tuple(ed[6]),
                guarded=ed[7]))
        graph.class_bases = {
            name: tuple(bases)
            for name, bases in data.get("class_bases", {}).items()  # type: ignore[union-attr]
        }
        return graph


_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Innermost identifier of a receiver expression (``a.b.c`` -> "c")."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return None


def _ann_class_name(node: Optional[ast.AST]) -> Optional[str]:
    """Dotted class name named by an annotation, unwrapping quotes,
    ``Optional[...]`` and ``Union[...]``; ``None`` when no single project
    class is named."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return dotted_name(node)
    if isinstance(node, ast.Subscript):
        head = dotted_name(node.value)
        if head is None:
            return None
        tail = head.rsplit(".", 1)[-1]
        if tail in ("Optional", "Union"):
            slc: ast.AST = node.slice
            args = list(slc.elts) if isinstance(slc, ast.Tuple) else [slc]
            for arg in args:
                if isinstance(arg, ast.Constant) and arg.value is None:
                    continue
                name = _ann_class_name(arg)
                if name is not None:
                    return name
    return None


def _mentions_guard_token(test: ast.AST) -> bool:
    """Whether an ``if`` test involves a telemetry enablement flag."""
    for sub in ast.walk(test):
        terminal: Optional[str] = None
        if isinstance(sub, ast.Attribute):
            terminal = sub.attr
        elif isinstance(sub, ast.Name):
            terminal = sub.id
        if terminal is not None and terminal in _TELEMETRY_GUARD_TOKENS:
            return True
    return False


class _ModuleTable:
    """Pass-1 symbol table of one module."""

    def __init__(self, module: ModuleSource) -> None:
        self.module = module
        self.functions: Dict[str, str] = {}   # name -> fid
        self.classes: Dict[str, str] = {}     # name -> cid
        self.imports: Dict[str, str] = import_table(module.tree)


class GraphBuilder:
    """Builds a :class:`FlowGraph` for one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = FlowGraph()
        self._tables: Dict[str, _ModuleTable] = {}   # dotted name -> table
        self._by_relpath: Dict[str, _ModuleTable] = {}
        self._subclasses: Dict[str, List[str]] = {}  # cid -> subclass cids

    # ------------------------------------------------------------------
    # Pass 1: symbols
    # ------------------------------------------------------------------

    def _module_names(self, module: ModuleSource) -> List[str]:
        """Dotted names this module is importable as."""
        rel = module.relpath[:-3] if module.relpath.endswith(".py") \
            else module.relpath
        if rel.endswith("/__init__"):
            rel = rel[: -len("/__init__")]
        elif rel == "__init__":
            rel = ""
        dotted = rel.replace("/", ".")
        names = [dotted] if dotted else []
        root_pkg = self.project.root.name
        if (self.project.root / "__init__.py").exists():
            names.append(f"{root_pkg}.{dotted}" if dotted else root_pkg)
        return names

    def _collect_module(self, module: ModuleSource) -> None:
        table = _ModuleTable(module)
        for node in module.tree.body:
            self._collect_def(module, table, node, prefix="")
        for name in self._module_names(module):
            self._tables[name] = table
        self._by_relpath[module.relpath] = table

    def _collect_def(self, module: ModuleSource, table: _ModuleTable,
                     node: ast.stmt, prefix: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}"
            fid = f"{module.relpath}:{qualname}"
            if not prefix:
                table.functions[node.name] = fid
            self.graph.functions[fid] = FunctionInfo(
                fid=fid, relpath=module.relpath, qualname=qualname,
                line=node.lineno, col=node.col_offset,
                is_async=isinstance(node, ast.AsyncFunctionDef))
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    pass  # nested defs are collected during pass 2
        elif isinstance(node, ast.ClassDef):
            qualname = f"{prefix}{node.name}"
            cid = f"{module.relpath}:{qualname}"
            if not prefix:
                table.classes[node.name] = cid
            bases = tuple(
                base for base in
                (dotted_name(b) for b in node.bases) if base is not None
            )
            cinfo = ClassInfo(cid=cid, relpath=module.relpath,
                              qualname=qualname, bases=bases)
            base_terminals = tuple(b.rsplit(".", 1)[-1] for b in bases)
            merged = self.graph.class_bases.get(node.name, ())
            self.graph.class_bases[node.name] = tuple(
                dict.fromkeys(merged + base_terminals))
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    m_qual = f"{qualname}.{stmt.name}"
                    m_fid = f"{module.relpath}:{m_qual}"
                    cinfo.methods[stmt.name] = m_fid
                    self.graph.functions[m_fid] = FunctionInfo(
                        fid=m_fid, relpath=module.relpath, qualname=m_qual,
                        line=stmt.lineno, col=stmt.col_offset,
                        is_async=isinstance(stmt, ast.AsyncFunctionDef))
                    if stmt.name == "__init__":
                        self._collect_self_attrs(cinfo, stmt)
                elif isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name):
                    ann = _ann_class_name(stmt.annotation)
                    if ann is not None:
                        cinfo.attr_types[stmt.target.id] = ann
            self.graph.classes[cid] = cinfo

    def _collect_self_attrs(self, cinfo: ClassInfo,
                            init: Union[ast.FunctionDef,
                                        ast.AsyncFunctionDef]) -> None:
        """``self.x: T = ...`` / ``self.x = ClassName(...)`` /
        ``self.x = annotated_param`` in __init__."""
        params: Dict[str, Optional[str]] = {}
        for arg in (list(init.args.posonlyargs) + list(init.args.args)
                    + list(init.args.kwonlyargs)):
            params[arg.arg] = _ann_class_name(arg.annotation)
        for node in ast.walk(init):
            target: Optional[ast.expr] = None
            ann: Optional[str] = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
                ann = _ann_class_name(node.annotation)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(node.value, ast.Call):
                    ann = dotted_name(node.value.func)
                elif isinstance(node.value, ast.Name):
                    ann = params.get(node.value.id)
            if (
                ann is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in cinfo.attr_types
            ):
                cinfo.attr_types[target.attr] = ann

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------

    def _resolve_object(self, dotted: str, depth: int = 0
                        ) -> Optional[Tuple[str, str]]:
        """Resolve a fully qualified dotted name to ``(kind, id)``.

        ``kind`` is ``"func"`` or ``"class"``.  Follows re-exporting
        import aliases up to a fixed depth (``from .executor import x``
        in a package ``__init__`` resolves through to the definition).
        """
        if depth > 8:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            table = self._tables.get(prefix)
            if table is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in table.functions and len(rest) == 1:
                return ("func", table.functions[head])
            if head in table.classes:
                cid = table.classes[head]
                if len(rest) == 1:
                    return ("class", cid)
                if len(rest) == 2:
                    method = self._lookup_method(cid, rest[1])
                    if method is not None:
                        return ("func", method)
                return None
            if head in table.imports:
                target = ".".join([table.imports[head]] + rest[1:])
                return self._resolve_object(target, depth + 1)
            return None
        return None

    def _resolve_in_module(self, table: _ModuleTable, name: str,
                           ) -> Optional[Tuple[str, str]]:
        """Resolve a (possibly dotted) name appearing inside a module."""
        head, _, rest = name.partition(".")
        if head in table.functions and not rest:
            return ("func", table.functions[head])
        if head in table.classes:
            cid = table.classes[head]
            if not rest:
                return ("class", cid)
            if "." not in rest:
                method = self._lookup_method(cid, rest)
                if method is not None:
                    return ("func", method)
            return None
        if head in table.imports:
            target = table.imports[head] + (f".{rest}" if rest else "")
            return self._resolve_object(target)
        return None

    def _lookup_method(self, cid: str, name: str) -> Optional[str]:
        """Find ``name`` on class ``cid`` or its project base classes."""
        seen = set()
        stack = [cid]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cinfo = self.graph.classes.get(current)
            if cinfo is None:
                continue
            if name in cinfo.methods:
                return cinfo.methods[name]
            table = self._by_relpath.get(cinfo.relpath)
            for base in cinfo.bases:
                resolved = None
                if table is not None:
                    resolved = self._resolve_in_module(table, base)
                if resolved is not None and resolved[0] == "class":
                    stack.append(resolved[1])
        return None

    def _dispatch_targets(self, cid: str, name: str) -> List[str]:
        """Method dispatch: the method on ``cid`` plus subclass overrides."""
        targets: List[str] = []
        base = self._lookup_method(cid, name)
        if base is not None:
            targets.append(base)
        for sub in self._subclasses.get(cid, []):
            override = self.graph.classes[sub].methods.get(name)
            if override is not None and override not in targets:
                targets.append(override)
        return targets

    def _link_subclasses(self) -> None:
        for cinfo in self.graph.classes.values():
            table = self._by_relpath.get(cinfo.relpath)
            if table is None:
                continue
            for base in cinfo.bases:
                resolved = self._resolve_in_module(table, base)
                if resolved is not None and resolved[0] == "class":
                    subs = self._subclasses.setdefault(resolved[1], [])
                    subs.append(cinfo.cid)
        # transitive closure so dispatch on a root sees deep overrides
        changed = True
        while changed:
            changed = False
            for cid, subs in list(self._subclasses.items()):
                extra = [
                    deep for sub in list(subs)
                    for deep in self._subclasses.get(sub, [])
                    if deep not in subs and deep != cid
                ]
                if extra:
                    subs.extend(extra)
                    changed = True

    # ------------------------------------------------------------------
    # Pass 2: call sites
    # ------------------------------------------------------------------

    def build(self) -> FlowGraph:
        """Run both passes and return the completed graph."""
        for module in self.project.modules:
            self._collect_module(module)
        self._link_subclasses()
        for module in self.project.modules:
            table = self._by_relpath[module.relpath]
            for node in module.tree.body:
                self._walk_scope(module, table, node, prefix="",
                                 class_cid=None)
        self.graph.edges.sort(
            key=lambda e: (e.caller, e.line, e.col, e.callee, e.kind))
        return self.graph

    def _walk_scope(self, module: ModuleSource, table: _ModuleTable,
                    node: ast.stmt, prefix: str,
                    class_cid: Optional[str]) -> None:
        """Descend into defs, analysing each function body exactly once."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}"
            self._analyze_function(module, table, node, qualname, class_cid)
            inner_prefix = f"{qualname}.<locals>."
            for stmt in ast.walk(node):
                if stmt is node:
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)) and \
                        self._direct_parent_function(module, stmt) is node:
                    self._register_nested(module, table, stmt, inner_prefix,
                                          f"{module.relpath}:{qualname}",
                                          class_cid)
        elif isinstance(node, ast.ClassDef):
            cid = f"{module.relpath}:{prefix}{node.name}"
            for stmt in node.body:
                self._walk_scope(module, table, stmt,
                                 prefix=f"{prefix}{node.name}.",
                                 class_cid=cid)

    def _direct_parent_function(self, module: ModuleSource,
                                node: ast.AST) -> Optional[ast.AST]:
        """Nearest enclosing function/class def of ``node``."""
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                return ancestor
        return None

    def _register_nested(self, module: ModuleSource, table: _ModuleTable,
                         node: ast.stmt, prefix: str, parent_fid: str,
                         class_cid: Optional[str]) -> None:
        """A nested def: new node + conservative ``ref`` edge from parent."""
        if isinstance(node, ast.ClassDef):
            return
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qualname = f"{prefix}{node.name}"
        fid = f"{module.relpath}:{qualname}"
        if fid not in self.graph.functions:
            self.graph.functions[fid] = FunctionInfo(
                fid=fid, relpath=module.relpath, qualname=qualname,
                line=node.lineno, col=node.col_offset,
                is_async=isinstance(node, ast.AsyncFunctionDef))
        self.graph.edges.append(CallEdge(
            caller=parent_fid, callee=fid, line=node.lineno,
            col=node.col_offset, kind="ref",
            caught=self._caught_at(module, node),
            guarded=self._guarded_at(module, node)))
        self._analyze_function(module, table, node, qualname, class_cid)
        inner_prefix = f"{qualname}.<locals>."
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                    self._direct_parent_function(module, stmt) is node:
                self._register_nested(module, table, stmt, inner_prefix,
                                      fid, class_cid)

    # -- per-function analysis -----------------------------------------

    def _analyze_function(self, module: ModuleSource, table: _ModuleTable,
                          node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                          qualname: str, class_cid: Optional[str]) -> None:
        fid = f"{module.relpath}:{qualname}"
        info = self.graph.functions.get(fid)
        if info is None:
            return
        env = self._seed_env(table, node, class_cid)
        own = self._own_nodes(module, node)
        # Flow-insensitive env pass first: local types must be known
        # before any call in the body is resolved, regardless of where
        # the assignment sits.  Iterate to a small fixpoint so chains
        # like ``a = self._x; b = a.y`` resolve in any order.
        for _ in range(3):
            changed = False
            for sub in own:
                name: Optional[str] = None
                inferred: Optional[str] = None
                if isinstance(sub, ast.Assign) and \
                        len(sub.targets) == 1 and \
                        isinstance(sub.targets[0], ast.Name):
                    name = sub.targets[0].id
                    inferred = self._infer_type(table, sub.value, env,
                                                class_cid)
                elif isinstance(sub, ast.AnnAssign) and \
                        isinstance(sub.target, ast.Name):
                    name = sub.target.id
                    ann = _ann_class_name(sub.annotation)
                    if ann is not None:
                        resolved = self._resolve_in_module(table, ann)
                        if resolved is not None and resolved[0] == "class":
                            inferred = resolved[1]
                if name is not None and inferred is not None and \
                        env.get(name) != inferred:
                    env[name] = inferred
                    changed = True
            if not changed:
                break
        for sub in own:
            if isinstance(sub, ast.Call):
                self._analyze_call(module, table, node, fid, sub, env,
                                   class_cid)
            elif isinstance(sub, ast.Raise):
                self._analyze_raise(module, table, info, sub)

    def _own_nodes(self, module: ModuleSource,
                   func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                   ) -> List[ast.AST]:
        """Nodes of ``func``'s body excluding nested function subtrees."""
        out: List[ast.AST] = []
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _seed_env(self, table: _ModuleTable,
                  node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                  class_cid: Optional[str]) -> Dict[str, str]:
        """Initial local-type environment from parameter annotations."""
        env: Dict[str, str] = {}
        args = list(node.args.posonlyargs) + list(node.args.args) + \
            list(node.args.kwonlyargs)
        for arg in args:
            if arg.arg in ("self", "cls") and class_cid is not None:
                env[arg.arg] = class_cid
                continue
            ann = _ann_class_name(arg.annotation)
            if ann is None:
                continue
            resolved = self._resolve_in_module(table, ann)
            if resolved is not None and resolved[0] == "class":
                env[arg.arg] = resolved[1]
        if class_cid is not None:
            env.setdefault("self", class_cid)
            env.setdefault("cls", class_cid)
        return env

    def _infer_type(self, table: _ModuleTable, expr: ast.AST,
                    env: Dict[str, str],
                    class_cid: Optional[str]) -> Optional[str]:
        """Class id of an expression, or ``None`` when unknown."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self._infer_type(table, expr.value, env, class_cid)
            if owner is None:
                return None
            cinfo = self.graph.classes.get(owner)
            if cinfo is None:
                return None
            ann = cinfo.attr_types.get(expr.attr)
            if ann is None:
                return None
            owner_table = self._by_relpath.get(cinfo.relpath)
            if owner_table is None:
                return None
            resolved = self._resolve_in_module(owner_table, ann)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        if isinstance(expr, ast.Call):
            target = dotted_name(expr.func)
            if target is None:
                return None
            resolved = self._resolve_in_module(table, target)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        return None

    def _caught_at(self, module: ModuleSource,
                   node: ast.AST) -> Tuple[str, ...]:
        """Handler type names of every ``try`` body enclosing ``node``."""
        caught: List[str] = []
        current: ast.AST = node
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Try):
                in_body = any(
                    stmt is current or self._contains(stmt, current)
                    for stmt in ancestor.body
                )
                if in_body:
                    for handler in ancestor.handlers:
                        caught.extend(self._handler_names(handler))
            current = ancestor
        return tuple(dict.fromkeys(caught))

    @staticmethod
    def _contains(tree: ast.AST, target: ast.AST) -> bool:
        for sub in ast.walk(tree):
            if sub is target:
                return True
        return False

    @staticmethod
    def _handler_names(handler: ast.ExceptHandler) -> List[str]:
        if handler.type is None:
            return ["BaseException"]
        types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
            else [handler.type]
        names: List[str] = []
        for t in types:
            name = dotted_name(t)
            if name is not None:
                names.append(name.rsplit(".", 1)[-1])
        return names

    def _guarded_at(self, module: ModuleSource, node: ast.AST) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.If) and \
                    _mentions_guard_token(ancestor.test):
                return True
        return False

    def _analyze_raise(self, module: ModuleSource, table: _ModuleTable,
                       info: FunctionInfo, node: ast.Raise) -> None:
        caught = self._caught_at(module, node)
        if node.exc is None:
            # bare re-raise: propagates whatever the handler caught
            for ancestor in module.ancestors(node):
                if isinstance(ancestor, ast.ExceptHandler):
                    for name in self._handler_names(ancestor):
                        info.raises.append(RaiseSite(
                            exc=name, line=node.lineno, caught=caught))
                    return
            info.raises.append(RaiseSite(exc="Exception", line=node.lineno,
                                         caught=caught))
            return
        exc = node.exc.func if isinstance(node.exc, ast.Call) else node.exc
        name = dotted_name(exc)
        if name is None:
            return
        resolved = self._resolve_in_module(table, name)
        if resolved is not None:
            name = resolved[1].rsplit(":", 1)[-1]
        info.raises.append(RaiseSite(exc=name.rsplit(".", 1)[-1],
                                     line=node.lineno, caught=caught))

    # -- call sites ----------------------------------------------------

    def _analyze_call(self, module: ModuleSource, table: _ModuleTable,
                      func_node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                      fid: str, call: ast.Call, env: Dict[str, str],
                      class_cid: Optional[str]) -> None:
        info = self.graph.functions[fid]
        awaited = isinstance(module.parents.get(call), ast.Await)
        caught = self._caught_at(module, call)
        guarded = self._guarded_at(module, call)

        self._intrinsic_effects(table, info, call, awaited, guarded)

        targets = self._callee_targets(table, call, env, class_cid)
        for target in targets:
            self.graph.edges.append(CallEdge(
                caller=fid, callee=target, line=call.lineno,
                col=call.col_offset, kind="call", awaited=awaited,
                caught=caught, guarded=guarded))

        # Function references passed as arguments run later in some
        # context; classify that context by the call target.
        kind = "ref"
        func_terminal = _terminal_name(call.func)
        if func_terminal in _EXECUTOR_ATTRS:
            kind = "executor"
        elif func_terminal in _SPAWN_NAMES or (
                func_terminal is not None and func_terminal == "get_context"):
            kind = "spawn"
        ref_args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in ref_args:
            if not isinstance(arg, (ast.Name, ast.Attribute)):
                continue
            resolved = self._reference_target(table, arg, env, class_cid)
            if resolved is None:
                continue
            ref_kind = kind
            for kw in call.keywords:
                if kw.arg == "target" and kw.value is arg:
                    ref_kind = "spawn"
            self.graph.edges.append(CallEdge(
                caller=fid, callee=resolved, line=call.lineno,
                col=call.col_offset, kind=ref_kind, awaited=awaited,
                caught=caught, guarded=guarded))

    def _reference_target(self, table: _ModuleTable, arg: ast.expr,
                          env: Dict[str, str],
                          class_cid: Optional[str]) -> Optional[str]:
        """Function id named by a bare function-reference argument."""
        if isinstance(arg, ast.Attribute) and \
                isinstance(arg.value, ast.Name):
            owner = env.get(arg.value.id)
            if owner is not None:
                method = self._lookup_method(owner, arg.attr)
                if method is not None:
                    return method
        name = dotted_name(arg)
        if name is None:
            return None
        resolved = self._resolve_in_module(table, name)
        if resolved is not None and resolved[0] == "func":
            return resolved[1]
        return None

    def _callee_targets(self, table: _ModuleTable, call: ast.Call,
                        env: Dict[str, str],
                        class_cid: Optional[str]) -> List[str]:
        """Resolve a call expression to zero or more function ids."""
        func = call.func
        # Plain / dotted names through imports and locals.
        name = dotted_name(func)
        if name is not None:
            head, _, rest = name.partition(".")
            if head in env and rest:
                # typed receiver: method dispatch incl. subclass overrides
                return self._attr_dispatch(table, env[head], rest)
            resolved = self._resolve_in_module(table, name)
            if resolved is not None:
                if resolved[0] == "func":
                    return [resolved[1]]
                init = self._lookup_method(resolved[1], "__init__")
                return [init] if init is not None else []
            return []
        # Method call on a computable receiver expression.
        if isinstance(func, ast.Attribute):
            owner = self._infer_type(table, func.value, env, class_cid)
            if owner is not None:
                return self._dispatch_targets(owner, func.attr)
        return []

    def _attr_dispatch(self, table: _ModuleTable, cid: str,
                       rest: str) -> List[str]:
        """Dispatch ``receiver.a.b()`` where receiver has class ``cid``."""
        parts = rest.split(".")
        current = cid
        for attr in parts[:-1]:
            cinfo = self.graph.classes.get(current)
            if cinfo is None:
                return []
            ann = cinfo.attr_types.get(attr)
            if ann is None:
                return []
            owner_table = self._by_relpath.get(cinfo.relpath)
            if owner_table is None:
                return []
            resolved = self._resolve_in_module(owner_table, ann)
            if resolved is None or resolved[0] != "class":
                return []
            current = resolved[1]
        return self._dispatch_targets(current, parts[-1])

    # -- intrinsic effects ---------------------------------------------

    def _intrinsic_effects(self, table: _ModuleTable, info: FunctionInfo,
                           call: ast.Call, awaited: bool,
                           guarded: bool) -> None:
        """Recognise blocking / RNG-drawing primitives at the site."""
        func = call.func
        dotted = dotted_name(func)
        resolved: Optional[str] = None
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            base = table.imports.get(head, head)
            resolved = f"{base}.{rest}" if rest else base

        if not awaited:
            detail = self._blocking_detail(resolved, func, call)
            if detail is not None:
                info.intrinsics.append(Intrinsic(
                    effect="blocking", line=call.lineno,
                    col=call.col_offset, detail=detail, guarded=guarded))
        detail = self._rng_detail(resolved, func)
        if detail is not None:
            info.intrinsics.append(Intrinsic(
                effect="draws-rng", line=call.lineno, col=call.col_offset,
                detail=detail, guarded=guarded))

    @staticmethod
    def _blocking_detail(resolved: Optional[str], func: ast.expr,
                         call: ast.Call) -> Optional[str]:
        if resolved is not None:
            if resolved in _BLOCKING_TARGETS:
                return _BLOCKING_TARGETS[resolved]
            for prefix in _BLOCKING_PREFIXES:
                if resolved.startswith(prefix):
                    return f"{resolved}()"
        if isinstance(func, ast.Name) and func.id == "open":
            return "open()"
        if isinstance(func, ast.Attribute):
            if func.attr in _PATH_IO_ATTRS:
                return f"Path.{func.attr}()"
            if func.attr == "open":
                return ".open()"
            receiver = _terminal_name(func.value)
            if receiver is not None:
                lowered = receiver.lower()
                if func.attr == "join" and _JOIN_RECEIVER.search(lowered):
                    return f"{receiver}.join()"
                if func.attr == "get" and _QUEUE_RECEIVER.search(lowered):
                    return f"{receiver}.get()"
        return None

    @staticmethod
    def _rng_detail(resolved: Optional[str],
                    func: ast.expr) -> Optional[str]:
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in _DRAW_METHODS:
            return None
        receiver = func.value
        if isinstance(receiver, ast.Call) and \
                isinstance(receiver.func, ast.Attribute) and \
                receiver.func.attr in ("get", "child"):
            return f"<stream>.{func.attr}()"
        terminal = _terminal_name(receiver)
        if terminal is not None and _RNG_RECEIVER.search(terminal.lower()):
            return f"{terminal}.{func.attr}()"
        return None


def build_graph(project: Project) -> FlowGraph:
    """Build the project call graph (two passes over every module)."""
    return GraphBuilder(project).build()
