"""Fixpoint effect propagation over the project call graph.

Three effects form the lattice (each a powerset / boolean domain, so the
fixpoint is a plain monotone worklist over reverse call edges):

* ``blocking`` — the function may block the calling thread (file/socket
  I/O, ``time.sleep``, ``subprocess``, process/thread ``join``, sync
  ``queue.get``).  Propagates along ``call`` and ``ref`` edges; masked
  by ``executor`` (the pool thread blocks, not the caller) and ``spawn``
  edges.
* ``draws-rng`` — the function may consume named RNG substream state.
  Propagates along ``call``, ``ref`` and ``executor`` edges (a draw on a
  pool thread still perturbs the stream).
* ``raises(T)`` — exception class names that may escape the function.
  Propagates along ``call``, ``ref`` and ``executor`` edges, filtered at
  every call site by the ``except`` clauses of enclosing ``try`` bodies
  (subtype-aware via the project class hierarchy plus the builtin one).

Each effect carries a *witness* — the intrinsic site or call edge that
introduced it — so checkers can render a human-readable chain from the
flagged function down to the primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lintkit.flow.graph import CallEdge, FlowGraph

#: Builtin exception hierarchy (terminal names), enough to decide
#: ``except`` coverage for exceptions the project raises.
_BUILTIN_BASES: Dict[str, str] = {
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "NotImplementedError": "RuntimeError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "ConnectionError": "OSError",
    "ConnectionResetError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "BrokenPipeError": "ConnectionError",
    "TimeoutError": "OSError",
    "InterruptedError": "OSError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "IncompleteReadError": "EOFError",
    "LimitOverrunError": "Exception",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
    "CancelledError": "BaseException",
}

#: Exceptions that are control flow, not failures — never reported.
CONTROL_FLOW_EXCEPTIONS = frozenset({
    "SystemExit", "KeyboardInterrupt", "GeneratorExit", "CancelledError",
    "StopIteration", "StopAsyncIteration",
})

#: Edge kinds along which each effect propagates caller-ward.
_PROPAGATE_KINDS = {
    "blocking": frozenset({"call", "ref"}),
    "draws-rng": frozenset({"call", "ref", "executor"}),
    "raises": frozenset({"call", "ref", "executor"}),
}


@dataclass
class Witness:
    """Why a function has an effect: an intrinsic site or a call edge."""

    kind: str                    # "intrinsic" | "edge"
    line: int                    # site line in the function's own module
    detail: str                  # primitive name (intrinsic witnesses)
    callee: Optional[str] = None  # callee fid (edge witnesses)


class ExceptionHierarchy:
    """Subtype queries over project + builtin exception classes."""

    def __init__(self, class_bases: Dict[str, Tuple[str, ...]]) -> None:
        self._bases = class_bases

    def parents(self, name: str) -> Tuple[str, ...]:
        project = self._bases.get(name)
        if project:
            return project
        builtin = _BUILTIN_BASES.get(name)
        return (builtin,) if builtin is not None else ()

    def is_subtype(self, name: str, ancestor: str) -> bool:
        """Whether exception ``name`` is ``ancestor`` or derives from it."""
        if ancestor == "BaseException":
            return True
        seen = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current == ancestor:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.parents(current))
        return False

    def caught_by(self, exc: str, caught: Tuple[str, ...]) -> bool:
        """Whether any handler in ``caught`` catches ``exc``."""
        return any(self.is_subtype(exc, c) for c in caught)

    def is_taxonomy_member(self, exc: str, root: str) -> bool:
        """Whether ``exc`` belongs to the project taxonomy rooted at
        ``root`` (terminal class name, e.g. ``"ReproError"``)."""
        return self.is_subtype(exc, root)


@dataclass
class EffectResults:
    """Fixpoint output: per-function effect sets with witnesses."""

    blocking: Dict[str, Witness]
    draws_rng: Dict[str, Witness]
    raises: Dict[str, Dict[str, Witness]]
    hierarchy: ExceptionHierarchy

    def blocking_chain(self, fid: str, limit: int = 6) -> List[str]:
        """Human-readable witness chain from ``fid`` to the primitive."""
        return self._chain(self.blocking, fid, limit)

    def rng_chain(self, fid: str, limit: int = 6) -> List[str]:
        return self._chain(self.draws_rng, fid, limit)

    def raise_chain(self, fid: str, exc: str,
                    limit: int = 6) -> List[str]:
        chain: List[str] = []
        current: Optional[str] = fid
        for _ in range(limit):
            if current is None:
                break
            per_exc = self.raises.get(current, {})
            witness = per_exc.get(exc)
            if witness is None:
                break
            if witness.kind == "intrinsic":
                chain.append(f"raise {exc} at line {witness.line}")
                break
            chain.append(_short_fid(witness.callee or "?"))
            current = witness.callee
        return chain

    def _chain(self, table: Dict[str, Witness], fid: str,
               limit: int) -> List[str]:
        chain: List[str] = []
        current: Optional[str] = fid
        for _ in range(limit):
            if current is None:
                break
            witness = table.get(current)
            if witness is None:
                break
            if witness.kind == "intrinsic":
                chain.append(witness.detail)
                break
            chain.append(_short_fid(witness.callee or "?"))
            current = witness.callee
        return chain


def _short_fid(fid: str) -> str:
    """``campaign/journal.py:JournalWriter._write`` -> qualname."""
    return fid.rsplit(":", 1)[-1]


def propagate(graph: FlowGraph) -> EffectResults:
    """Run the fixpoint and return per-function effect sets."""
    hierarchy = ExceptionHierarchy(graph.class_bases)
    blocking: Dict[str, Witness] = {}
    draws_rng: Dict[str, Witness] = {}
    raises: Dict[str, Dict[str, Witness]] = {}

    # Seed from intrinsics.
    for fid, info in graph.functions.items():
        for intrinsic in info.intrinsics:
            if intrinsic.effect == "blocking" and fid not in blocking:
                blocking[fid] = Witness(kind="intrinsic",
                                        line=intrinsic.line,
                                        detail=intrinsic.detail)
            elif intrinsic.effect == "draws-rng" and fid not in draws_rng:
                draws_rng[fid] = Witness(kind="intrinsic",
                                         line=intrinsic.line,
                                         detail=intrinsic.detail)
        for site in info.raises:
            if hierarchy.caught_by(site.exc, site.caught):
                continue
            per_exc = raises.setdefault(fid, {})
            if site.exc not in per_exc:
                per_exc[site.exc] = Witness(kind="intrinsic",
                                            line=site.line,
                                            detail=site.exc)

    edges_to_caller: Dict[str, List[CallEdge]] = graph.edges_to()

    # Worklist: when a callee gains an effect, revisit its callers.
    worklist: List[str] = sorted(
        set(blocking) | set(draws_rng) | set(raises))
    in_list = set(worklist)
    iterations = 0
    max_iterations = 20 * max(1, len(graph.functions))
    while worklist and iterations < max_iterations:
        iterations += 1
        fid = worklist.pop()
        in_list.discard(fid)
        for edge in edges_to_caller.get(fid, []):
            caller = edge.caller
            if caller not in graph.functions:
                continue
            changed = False
            if fid in blocking and caller not in blocking and \
                    edge.kind in _PROPAGATE_KINDS["blocking"]:
                blocking[caller] = Witness(kind="edge", line=edge.line,
                                           detail="", callee=fid)
                changed = True
            if fid in draws_rng and caller not in draws_rng and \
                    edge.kind in _PROPAGATE_KINDS["draws-rng"]:
                draws_rng[caller] = Witness(kind="edge", line=edge.line,
                                            detail="", callee=fid)
                changed = True
            if fid in raises and edge.kind in _PROPAGATE_KINDS["raises"]:
                per_caller = raises.setdefault(caller, {})
                for exc in raises[fid]:
                    if exc in per_caller:
                        continue
                    if hierarchy.caught_by(exc, edge.caught):
                        continue
                    per_caller[exc] = Witness(kind="edge", line=edge.line,
                                              detail="", callee=fid)
                    changed = True
                if not per_caller:
                    raises.pop(caller, None)
            if changed and caller not in in_list:
                worklist.append(caller)
                in_list.add(caller)

    return EffectResults(blocking=blocking, draws_rng=draws_rng,
                         raises=raises, hierarchy=hierarchy)
