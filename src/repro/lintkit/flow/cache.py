"""On-disk cache for the project call graph.

Building the graph costs a two-pass AST walk over every module — cheap,
but it dominates a warm ``repro lint`` run.  The serialised graph is
keyed by :func:`repro.runner.cache.source_tree_token` over the analysed
root **plus** a digest of the files that token deliberately skips
(``lintkit/``, ``analysis/``, ``campaign/``, the CLI — excluded there
because they cannot change trial bytes, but very much analysed here), so
any source edit anywhere under the root invalidates the cached graph.

Entries live under ``$REPRO_CACHE_DIR``-or-``~/.cache/repro-injectable``
``/flow`` as single JSON files; a corrupt or mismatched entry is treated
as a miss and rebuilt.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from repro.lintkit.flow.graph import FlowGraph
from repro.runner.cache import (
    CACHE_DIR_ENV,
    _is_result_relevant,
    source_tree_token,
)

#: Bump when the graph schema or builder semantics change — old cached
#: graphs must never feed new checkers.
FLOW_SCHEMA_VERSION = 1


def default_flow_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-injectable``, ``/flow``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser() / "flow"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-injectable" / "flow"


def flow_tree_token(root: Path) -> str:
    """Cache key for the analysed tree at ``root``.

    Combines :func:`source_tree_token` with a digest of the source files
    it skips, so edits to lint/analysis/CLI code (analysed by flow,
    irrelevant to trial results) still invalidate the cached graph.
    """
    root = Path(root)
    base = source_tree_token(root, schema_version=FLOW_SCHEMA_VERSION)
    digest = hashlib.sha256(f"flow:{FLOW_SCHEMA_VERSION}:{base}".encode())
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        if _is_result_relevant(relpath):
            continue  # already folded into ``base``
        digest.update(relpath.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def load_graph(cache_dir: Path, token: str) -> Optional[FlowGraph]:
    """Cached graph for ``token``, or ``None`` on any kind of miss."""
    path = Path(cache_dir) / f"graph-{token[:32]}.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("token") != token or \
            payload.get("schema") != FLOW_SCHEMA_VERSION:
        return None
    try:
        return FlowGraph.from_dict(payload.get("graph", {}))
    except (KeyError, IndexError, TypeError):
        try:
            path.unlink()
        except OSError:
            pass
        return None


def store_graph(cache_dir: Path, token: str, graph: FlowGraph) -> None:
    """Persist ``graph`` under ``token`` (atomic rename, best-effort)."""
    cache_dir = Path(cache_dir)
    path = cache_dir / f"graph-{token[:32]}.json"
    payload = {
        "schema": FLOW_SCHEMA_VERSION,
        "token": token,
        "graph": graph.to_dict(),
    }
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        pass  # caching is best-effort; never fail the lint run
