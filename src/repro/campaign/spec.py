"""Declarative campaign specifications (plain dict / JSON, stdlib only).

A campaign is a sweep-of-sweeps: a list of *axes*, each naming a
registered experiment plus keyword parameters for its ``trial_units()``
grid expansion, with campaign-wide defaults (seed, connections per
configuration, metrics collection) and an execution policy (per-trial
timeout, bounded retry with exponential backoff).

Specs are deliberately boring data: a JSON object round-trips through
:meth:`CampaignSpec.from_dict` / :meth:`CampaignSpec.to_dict` without
loss, and :attr:`CampaignSpec.fingerprint` hashes the canonical form so
a journal can refuse to resume under a different spec.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError

#: Bump when the spec schema changes incompatibly.
SPEC_VERSION = 1

#: Spec keys interpreted by the engine (everything else is rejected so
#: typos fail loudly instead of silently running the default grid).
_TOP_LEVEL_KEYS = frozenset((
    "version", "name", "axes", "seed", "connections", "collect_metrics",
    "timeout_s", "max_retries", "backoff_s",
))


@dataclass(frozen=True)
class AxisSpec:
    """One campaign axis: an experiment name plus grid parameters.

    ``params`` is passed verbatim as keyword arguments to the registered
    experiment's ``trial_units()`` provider (campaign-wide defaults fill
    ``base_seed`` / ``n_connections`` / ``collect_metrics`` when the
    provider accepts them and the axis does not override them).
    """

    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AxisSpec":
        """Parse ``{"experiment": name, **params}``."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"axis must be an object, got {data!r}")
        if "experiment" not in data:
            raise ConfigurationError(f"axis missing 'experiment': {data!r}")
        experiment = data["experiment"]
        if not isinstance(experiment, str) or not experiment:
            raise ConfigurationError(
                f"axis 'experiment' must be a non-empty string, "
                f"got {experiment!r}")
        params = {k: v for k, v in data.items() if k != "experiment"}
        return cls(experiment=experiment, params=params)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form."""
        out: Dict[str, Any] = {"experiment": self.experiment}
        out.update(self.params)
        return out


@dataclass(frozen=True)
class CampaignSpec:
    """A complete declarative campaign.

    Attributes:
        name: display name, recorded in the journal header.
        axes: the experiment grids to expand, in order.
        seed: campaign-wide default ``base_seed`` for providers that take
            one (``None`` = each experiment's historical default).
        connections: campaign-wide default ``n_connections`` ditto.
        collect_metrics: run every trial instrumented and merge the
            snapshots into the campaign report.
        timeout_s: per-trial watchdog; an overrunning worker is killed
            and the unit retried (``None`` = no deadline).
        max_retries: retries for ``timeout``/``crash`` units before
            quarantining them as ``failed``.
        backoff_s: base of the exponential retry backoff.
    """

    name: str
    axes: Tuple[AxisSpec, ...]
    seed: Optional[int] = None
    connections: Optional[int] = None
    collect_metrics: bool = False
    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.25

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Parse and validate a plain-dict (JSON) spec."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"campaign spec must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - _TOP_LEVEL_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown campaign spec key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(_TOP_LEVEL_KEYS))})")
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported campaign spec version {version!r} "
                f"(this build reads version {SPEC_VERSION})")
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigurationError("campaign spec needs a non-empty 'name'")
        raw_axes = data.get("axes")
        if not isinstance(raw_axes, (list, tuple)) or not raw_axes:
            raise ConfigurationError(
                "campaign spec needs a non-empty 'axes' list")
        axes = tuple(AxisSpec.from_dict(axis) for axis in raw_axes)

        def _opt(key: str, kind: type, allow_none: bool = True) -> Any:
            value = data.get(key)
            if value is None:
                if allow_none:
                    return None
                raise ConfigurationError(f"spec key {key!r} may not be null")
            if kind is float and isinstance(value, int) \
                    and not isinstance(value, bool):
                value = float(value)
            if not isinstance(value, kind) or isinstance(value, bool) \
                    and kind is not bool:
                raise ConfigurationError(
                    f"spec key {key!r} must be {kind.__name__}, "
                    f"got {value!r}")
            return value

        spec = cls(
            name=name,
            axes=axes,
            seed=_opt("seed", int),
            connections=_opt("connections", int),
            collect_metrics=bool(data.get("collect_metrics", False)),
            timeout_s=_opt("timeout_s", float),
            max_retries=(_opt("max_retries", int)
                         if data.get("max_retries") is not None else 2),
            backoff_s=(_opt("backoff_s", float)
                       if data.get("backoff_s") is not None else 0.25),
        )
        if spec.connections is not None and spec.connections <= 0:
            raise ConfigurationError("'connections' must be positive")
        if spec.max_retries < 0:
            raise ConfigurationError("'max_retries' must be >= 0")
        if spec.timeout_s is not None and spec.timeout_s <= 0:
            raise ConfigurationError("'timeout_s' must be positive")
        return spec

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec from a JSON file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"cannot read campaign spec {path}: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (round-trips through from_dict)."""
        out: Dict[str, Any] = {
            "version": SPEC_VERSION,
            "name": self.name,
            "axes": [axis.to_dict() for axis in self.axes],
        }
        if self.seed is not None:
            out["seed"] = self.seed
        if self.connections is not None:
            out["connections"] = self.connections
        if self.collect_metrics:
            out["collect_metrics"] = True
        if self.timeout_s is not None:
            out["timeout_s"] = self.timeout_s
        out["max_retries"] = self.max_retries
        out["backoff_s"] = self.backoff_s
        return out

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form.

        The journal stores this; ``resume`` refuses to append results
        computed under a different spec.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()
