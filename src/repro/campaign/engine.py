"""Campaign engine: grid expansion, sharding, execution, resume.

The engine is a thin deterministic layer over
:func:`repro.runner.execute_trials`:

1. :func:`expand_units` turns a :class:`~repro.campaign.spec.CampaignSpec`
   into an ordered list of :class:`TrialUnit` with stable ids — the same
   spec always expands to the same units in the same order, on any
   machine.
2. :func:`shard_units` deals units round-robin over ``--shard i/n``; the
   shards partition the grid exactly.
3. :func:`run_campaign` executes the pending units of one shard under
   the spec's timeout/retry policy, checkpointing every completed unit
   to the append-only journal.  Interrupt it at any point (crash, kill,
   ``--max-trials`` budget) and a later invocation picks up exactly the
   units that have no journal record yet; because trials are
   seed-deterministic and the report is derived solely from the journal,
   the final aggregates are byte-identical to an uninterrupted run at
   any ``--jobs`` setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.campaign.journal import JournalWriter, UnitRecord, read_journal
from repro.campaign.registry import expand_axis, get_experiment, run_unit_trial
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrialUnit:
    """One schedulable unit of a campaign grid.

    Attributes:
        unit_id: ``<axis>.<experiment>:<config key>:<index>`` — stable
            across expansions of the same spec, the journal's key.
        axis: index into the spec's axes.
        experiment: registered experiment name.
        config_key: stringified configuration key within the axis.
        trial: the trial dataclass to execute (dispatched by type, see
            :func:`repro.campaign.registry.run_unit_trial`).
    """

    unit_id: str
    axis: int
    experiment: str
    config_key: str
    trial: Any


def expand_units(spec: CampaignSpec) -> List[TrialUnit]:
    """Expand a spec into its full ordered unit list."""
    units: List[TrialUnit] = []
    for axis_index, axis in enumerate(spec.axes):
        defn = get_experiment(axis.experiment)
        pairs = expand_axis(
            defn, axis.params,
            default_seed=spec.seed,
            default_connections=spec.connections,
            collect_metrics=spec.collect_metrics,
        )
        counters: Dict[str, int] = {}
        for key, trial in pairs:
            config_key = str(key)
            n = counters.get(config_key, 0)
            counters[config_key] = n + 1
            units.append(TrialUnit(
                unit_id=(f"{axis_index:02d}.{axis.experiment}:"
                         f"{config_key}:{n:04d}"),
                axis=axis_index,
                experiment=axis.experiment,
                config_key=config_key,
                trial=trial,
            ))
    return units


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``"i/n"`` into a validated ``(index, count)`` pair."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ConfigurationError(
            f"invalid shard {text!r}; expected 'i/n' (e.g. '0/4')"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ConfigurationError(
            f"invalid shard {text!r}; need 0 <= i < n")
    return index, count


def shard_units(units: List[TrialUnit], index: int,
                count: int) -> List[TrialUnit]:
    """Round-robin shard ``index`` of ``count`` over the expansion order.

    The shards for a fixed ``count`` partition the grid: every unit
    lands in exactly one shard.
    """
    if count < 1 or not 0 <= index < count:
        raise ConfigurationError(
            f"invalid shard {index}/{count}; need 0 <= i < n")
    return [unit for i, unit in enumerate(units) if i % count == index]


@dataclass
class CampaignState:
    """Everything known about a campaign: spec, grid, journal records."""

    spec: CampaignSpec
    fingerprint: str
    units: List[TrialUnit]
    records: Dict[str, UnitRecord] = field(default_factory=dict)
    runs: int = 0

    @property
    def total(self) -> int:
        """Units in the full grid."""
        return len(self.units)

    @property
    def done(self) -> int:
        """Grid units with a journal record."""
        return sum(1 for u in self.units if u.unit_id in self.records)

    @property
    def ok_count(self) -> int:
        """Grid units that ran to completion."""
        return sum(1 for u in self.units
                   if self.records.get(u.unit_id) is not None
                   and self.records[u.unit_id].status == "ok")

    @property
    def failed_count(self) -> int:
        """Grid units quarantined as failed."""
        return sum(1 for u in self.units
                   if self.records.get(u.unit_id) is not None
                   and self.records[u.unit_id].status != "ok")

    @property
    def pending(self) -> List[TrialUnit]:
        """Grid units with no record yet, in expansion order."""
        return [u for u in self.units if u.unit_id not in self.records]


def load_state(journal_path: Union[str, Path]) -> CampaignState:
    """Rebuild campaign state from a journal (for status/resume/report)."""
    spec_dict, fingerprint, records, runs = read_journal(journal_path)
    spec = CampaignSpec.from_dict(spec_dict)
    if spec.fingerprint != fingerprint:
        raise ConfigurationError(
            f"journal {journal_path} fingerprint does not match its own "
            f"spec; the file was edited or written by an incompatible "
            f"version")
    return CampaignState(spec=spec, fingerprint=fingerprint,
                         units=expand_units(spec), records=records,
                         runs=runs)


def units_by_id(units: List[TrialUnit]) -> Dict[str, TrialUnit]:
    """Index a unit list by its stable ids (they are unique by
    construction)."""
    return {unit.unit_id: unit for unit in units}


def open_journal(spec: CampaignSpec, path: Union[str, Path],
                 fsync: bool = False) -> Tuple[
                     JournalWriter, Dict[str, UnitRecord], int]:
    """Attach to (or create) the journal for ``spec``.

    Returns the single append-only writer plus the records and run count
    replayed from an existing file.  Refuses a journal written under a
    different spec — the fingerprint check that keeps resume honest.
    """
    path = Path(path)
    if path.exists():
        _, fingerprint, records, runs = read_journal(path)
        if fingerprint != spec.fingerprint:
            raise ConfigurationError(
                f"journal {path} belongs to a different campaign "
                f"(fingerprint {fingerprint[:12]}… != "
                f"{spec.fingerprint[:12]}…); use a fresh --journal or the "
                f"matching spec")
        return JournalWriter(path, fsync=fsync), records, runs
    return (JournalWriter.create(path, spec.to_dict(), spec.fingerprint,
                                 fsync=fsync),
            {}, 0)


def unit_record(unit: TrialUnit, result: Any, outcome: Any,
                cached: bool) -> UnitRecord:
    """Fold one completed unit into its journal record.

    ``outcome`` is the :class:`~repro.runner.executor.UnitOutcome` from
    the robust executor (``None`` for cache hits); ``result`` the trial
    result (placeholder or ``None`` when the outcome failed).  Both the
    in-process engine and the service workers build records through this
    one function, so a unit's journal line is byte-identical however it
    was executed.
    """
    if outcome is not None and not outcome.ok:
        return UnitRecord(
            unit_id=unit.unit_id,
            experiment=unit.experiment,
            config_key=unit.config_key,
            status="failed",
            failure={"kind": outcome.status, "detail": outcome.detail,
                     "retries": outcome.retries},
        )
    result_dict = {
        "success": bool(result.success),
        "attempts": int(result.attempts),
        "effect_observed": bool(result.effect_observed),
        "connection_survived": bool(result.connection_survived),
    }
    detection = getattr(result, "detection", None)
    if detection is not None:
        result_dict["detection"] = detection
    return UnitRecord(
        unit_id=unit.unit_id,
        experiment=unit.experiment,
        config_key=unit.config_key,
        status="ok",
        result=result_dict,
        metrics=result.metrics,
        cached=cached,
    )


def run_campaign(
    spec: CampaignSpec,
    journal_path: Union[str, Path],
    jobs: Optional[int] = None,
    shard: Tuple[int, int] = (0, 1),
    cache: Any = None,
    max_trials: Optional[int] = None,
    progress: Any = None,
    fsync: bool = False,
) -> CampaignState:
    """Run (or continue) a campaign shard, journaling every unit.

    Args:
        spec: the campaign; must match an existing journal's fingerprint.
        journal_path: the append-only checkpoint file; created with a
            header when absent.
        jobs: worker processes, as in :func:`repro.runner.execute_trials`.
        shard: ``(index, count)`` round-robin shard of the grid.
        cache: trial-result cache selector, as in ``execute_trials``.
        max_trials: budget — at most this many *fresh* units this
            invocation (``None`` = all pending); the rest stay pending
            for a later ``resume``.
        progress: optional
            :class:`~repro.telemetry.progress.ProgressTracker`; fed one
            update per completed unit.
        fsync: force every journal record to stable storage (see
            :class:`~repro.campaign.journal.JournalWriter`).

    Returns:
        The campaign state after this invocation (full-grid view).
    """
    units = expand_units(spec)
    writer, records, runs = open_journal(spec, journal_path, fsync=fsync)
    state = CampaignState(spec=spec, fingerprint=spec.fingerprint,
                          units=units, records=records, runs=runs + 1)
    sharded = shard_units(units, *shard)
    pending = [u for u in sharded if u.unit_id not in records]
    to_run = pending if max_trials is None else pending[:max_trials]
    if progress is not None:
        progress.reset(total=len(to_run))

    try:
        writer.record_run(shard=shard, jobs=jobs, budget=max_trials,
                          pending=len(pending))
        if not to_run:
            return state

        def on_result(index: int, trial: Any, result: Any, outcome: Any,
                      cached: bool) -> None:
            unit = to_run[index]
            record = unit_record(unit, result, outcome, cached)
            records[unit.unit_id] = record
            writer.record_unit(record)
            if progress is not None:
                progress.update(record.status, cached=record.cached)

        from repro.runner import execute_trials

        execute_trials(
            [unit.trial for unit in to_run],
            jobs=jobs,
            cache=cache,
            timeout_s=spec.timeout_s,
            max_retries=spec.max_retries,
            backoff_s=spec.backoff_s,
            isolate=True,
            runner=run_unit_trial,
            on_result=on_result,
        )
    finally:
        writer.close()
    return state
