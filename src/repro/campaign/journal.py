"""Append-only campaign checkpoint journal (``campaign.jsonl``).

One JSON object per line, three record types:

* ``campaign`` — the header: spec (canonical dict), its fingerprint, the
  journal schema version.  Always the first line.
* ``run`` — one per engine invocation: shard, jobs, budget.  Purely
  informational; never read back into aggregates (and deliberately free
  of timestamps, so journals are byte-reproducible).
* ``unit`` — one per completed unit: compact result or failure taxonomy.

The reader is crash-tolerant: a torn final line (the process died
mid-write) is ignored, and duplicate unit records keep the *first*
occurrence, so replaying a journal after an interrupted-then-resumed
campaign yields the same state as an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import ConfigurationError

#: Bump when the journal schema changes incompatibly.
JOURNAL_VERSION = 1


@dataclass(frozen=True)
class UnitRecord:
    """The journaled outcome of one campaign unit.

    Attributes:
        unit_id: stable id from the grid expansion
            (``<axis>.<experiment>:<config key>:<index>``).
        experiment: registered experiment name.
        config_key: stringified configuration key within the axis.
        status: ``"ok"`` (trial ran to completion) or ``"failed"``
            (quarantined by the robust executor).
        result: compact trial outcome for ``ok`` units —
            ``{"success", "attempts", "effect_observed",
            "connection_survived"}``.
        failure: failure taxonomy for ``failed`` units —
            ``{"kind": "timeout"|"crash"|"error", "detail", "retries"}``.
        metrics: merged telemetry snapshot when the trial was
            instrumented, else ``None``.
        cached: the result came from the on-disk trial cache (recorded
            for observability; excluded from reports, which must be
            byte-identical whether or not the cache was warm).
    """

    unit_id: str
    experiment: str
    config_key: str
    status: str
    result: Optional[Dict[str, Any]] = None
    failure: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    cached: bool = False


class JournalWriter:
    """Append-only writer; one flushed JSON line per record.

    ``fsync=True`` additionally forces every record through to stable
    storage (``os.fsync``) before ``_write`` returns — slower, but a
    machine crash (not just a process crash) then loses at most the one
    in-flight record, which the torn-tail recovery below already
    handles.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        _truncate_torn_tail(self.path)
        self._fh = self.path.open("a")

    @classmethod
    def create(cls, path: Union[str, Path], spec_dict: Dict[str, Any],
               fingerprint: str, fsync: bool = False) -> "JournalWriter":
        """Start a fresh journal with its ``campaign`` header line."""
        path = Path(path)
        if path.exists():
            raise ConfigurationError(f"journal {path} already exists")
        path.parent.mkdir(parents=True, exist_ok=True)
        writer = cls(path, fsync=fsync)
        writer._write({
            "type": "campaign",
            "version": JOURNAL_VERSION,
            "name": spec_dict.get("name", ""),
            "fingerprint": fingerprint,
            "spec": spec_dict,
        })
        return writer

    def _write(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def record_run(self, shard: Tuple[int, int], jobs: Optional[int],
                   budget: Optional[int], pending: int) -> None:
        """Note one engine invocation (informational only)."""
        self._write({
            "type": "run",
            "shard": list(shard),
            "jobs": jobs,
            "budget": budget,
            "pending": pending,
        })

    def record_unit(self, record: UnitRecord) -> None:
        """Checkpoint one completed unit."""
        payload = asdict(record)
        payload["type"] = "unit"
        self._write(payload)

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _truncate_torn_tail(path: Path) -> None:
    """Drop an unterminated final line left by a killed writer.

    Appending after a torn tail would concatenate the next record onto
    the partial line and corrupt *both*; the partial record was never
    acknowledged, so discarding it is the correct recovery (the unit
    simply stays pending and re-runs).
    """
    if not path.exists():
        return
    with path.open("rb+") as fh:
        data = fh.read()
        if not data or data.endswith(b"\n"):
            return
        cut = data.rfind(b"\n") + 1  # 0 when no newline at all
        fh.truncate(cut)


def record_from_payload(obj: Dict[str, Any]) -> UnitRecord:
    """Rebuild a :class:`UnitRecord` from its plain-dict (JSON) form.

    Shared by the journal reader and the campaign service, whose workers
    ship records over the wire as the same payload they would journal —
    one parsing path keeps a streamed-and-merged journal byte-identical
    to a locally written one.
    """
    unit_id = obj.get("unit_id")
    if not isinstance(unit_id, str) or not unit_id:
        raise ConfigurationError(f"unit record without a unit_id: {obj!r}")
    return UnitRecord(
        unit_id=unit_id,
        experiment=obj.get("experiment", ""),
        config_key=obj.get("config_key", ""),
        status=obj.get("status", "failed"),
        result=obj.get("result"),
        failure=obj.get("failure"),
        metrics=obj.get("metrics"),
        cached=bool(obj.get("cached", False)),
    )


def read_journal(path: Union[str, Path]) -> Tuple[
        Dict[str, Any], str, Dict[str, UnitRecord], int]:
    """Replay a journal into ``(spec dict, fingerprint, records, runs)``.

    ``records`` maps unit id → :class:`UnitRecord`, first occurrence
    winning; ``runs`` counts engine invocations.  A torn trailing line
    is tolerated; a missing or malformed header is not.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise ConfigurationError(f"cannot read journal {path}: {exc}") from exc
    header: Optional[Dict[str, Any]] = None
    records: Dict[str, UnitRecord] = {}
    runs = 0
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            if lineno == len(lines) - 1:
                break  # torn tail from a killed writer
            raise ConfigurationError(
                f"journal {path} is corrupt at line {lineno + 1}")
        kind = obj.get("type")
        if kind == "campaign":
            if header is None:
                if obj.get("version") != JOURNAL_VERSION:
                    raise ConfigurationError(
                        f"journal {path} has schema version "
                        f"{obj.get('version')!r}; this build reads "
                        f"{JOURNAL_VERSION}")
                header = obj
            continue
        if kind == "run":
            runs += 1
            continue
        if kind == "unit":
            unit_id = obj.get("unit_id")
            if not isinstance(unit_id, str) or unit_id in records:
                continue
            records[unit_id] = record_from_payload(obj)
    if header is None:
        raise ConfigurationError(
            f"journal {path} has no campaign header line")
    spec_dict = header.get("spec")
    fingerprint = header.get("fingerprint")
    if not isinstance(spec_dict, dict) or not isinstance(fingerprint, str):
        raise ConfigurationError(f"journal {path} header is malformed")
    return spec_dict, fingerprint, records, runs
