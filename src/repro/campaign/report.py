"""Campaign report rendering.

The report is a pure function of the journal's unit records and the
spec's deterministic grid expansion — never of wall time, cache
temperature, worker count, sharding, or how many interruptions it took
to finish.  That is what makes the acceptance check meaningful: an
interrupted-and-resumed campaign renders byte-identically to an
uninterrupted one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis.reporting import (
    render_distribution_table,
    render_failure_taxonomy,
    render_metrics_table,
    render_series,
)
from repro.campaign.engine import CampaignState


def status_dict(state: CampaignState) -> Dict[str, Any]:
    """Machine-readable campaign status.

    The one rendering path shared by ``repro campaign status --format
    json`` and the service's ``GET /status`` endpoint — like the text
    report, it is a pure function of the journal-derived state.
    """
    return {
        "name": state.spec.name,
        "fingerprint": state.fingerprint,
        "axes": [axis.experiment for axis in state.spec.axes],
        "total": state.total,
        "done": state.done,
        "ok": state.ok_count,
        "failed": state.failed_count,
        "pending": len(state.pending),
        "runs": state.runs,
    }


def _axis_dict(state: CampaignState, axis_index: int) -> Dict[str, Any]:
    """Per-axis aggregates: success rate plus attempt stats per config."""
    from repro.analysis.stats import box_stats

    axis = state.spec.axes[axis_index]
    axis_units = [u for u in state.units if u.axis == axis_index]
    samples: Dict[str, List[int]] = {}
    completed = successes = 0
    for unit in axis_units:
        samples.setdefault(unit.config_key, [])
        record = state.records.get(unit.unit_id)
        if record is None or record.status != "ok":
            continue
        completed += 1
        result = record.result or {}
        if result.get("success"):
            successes += 1
            samples[unit.config_key].append(int(result["attempts"]))
    configurations: Dict[str, Any] = {}
    for key, values in samples.items():
        if not values:
            configurations[key] = {"successes": 0}
            continue
        stats = box_stats(values)
        configurations[key] = {
            "successes": len(values),
            "attempts": {
                "count": stats.count,
                "mean": sum(values) / len(values),
                "min": stats.minimum,
                "median": stats.median,
                "max": stats.maximum,
            },
        }
    return {
        "axis": axis_index,
        "experiment": axis.experiment,
        "units": len(axis_units),
        "completed": completed,
        "successes": successes,
        "success_rate": successes / completed if completed else 0.0,
        "configurations": configurations,
    }


def _failures_dict(state: CampaignState) -> Dict[str, List[str]]:
    """Failed unit ids grouped by failure kind."""
    failures: Dict[str, List[str]] = {}
    for unit in state.units:
        record = state.records.get(unit.unit_id)
        if record is None or record.status == "ok":
            continue
        kind = (record.failure or {}).get("kind", "unknown")
        failures.setdefault(kind, []).append(unit.unit_id)
    return failures


def _merged_metrics(state: CampaignState) -> Optional[Dict[str, Any]]:
    """Merge the journaled telemetry snapshots (None when uninstrumented)."""
    snapshots = [
        state.records[unit.unit_id].metrics
        for unit in state.units
        if state.records.get(unit.unit_id) is not None
        and state.records[unit.unit_id].metrics
    ]
    if not snapshots:
        return None
    from repro.telemetry import merge_snapshots

    return {"instrumented_units": len(snapshots),
            "merged": merge_snapshots(snapshots)}


def report_dict(state: CampaignState) -> Dict[str, Any]:
    """Machine-readable campaign report (same data as :func:`build_report`).

    Shared by ``repro campaign report --format json`` and the service's
    ``GET /report?format=json`` endpoint.
    """
    return {
        "campaign": status_dict(state),
        "axes": [_axis_dict(state, i) for i in range(len(state.spec.axes))],
        "failures": _failures_dict(state),
        "metrics": _merged_metrics(state),
    }


def render_status(state: CampaignState) -> str:
    """Short progress summary for ``repro campaign status``."""
    spec = state.spec
    rows = [
        ("fingerprint", state.fingerprint[:16]),
        ("axes", ", ".join(axis.experiment for axis in spec.axes)),
        ("units", str(state.total)),
        ("completed", f"{state.done}/{state.total}"),
        ("ok", str(state.ok_count)),
        ("failed", str(state.failed_count)),
        ("pending", str(len(state.pending))),
        ("runs recorded", str(state.runs)),
    ]
    return render_series(f"Campaign {spec.name!r}", rows)


def build_report(state: CampaignState) -> str:
    """Full campaign report: overview, per-axis tables, failures, metrics."""
    spec = state.spec
    sections: List[str] = []

    sections.append(render_series(f"Campaign {spec.name!r}", [
        ("fingerprint", state.fingerprint[:16]),
        ("units", str(state.total)),
        ("ok", str(state.ok_count)),
        ("failed", str(state.failed_count)),
        ("pending", str(len(state.pending))),
    ]))

    for axis_index, axis in enumerate(spec.axes):
        axis_units = [u for u in state.units if u.axis == axis_index]
        samples: Dict[str, List[int]] = {}
        completed = successes = 0
        for unit in axis_units:
            samples.setdefault(unit.config_key, [])
            record = state.records.get(unit.unit_id)
            if record is None or record.status != "ok":
                continue
            completed += 1
            result = record.result or {}
            if result.get("success"):
                successes += 1
                samples[unit.config_key].append(int(result["attempts"]))
        title = (f"axis {axis_index}: {axis.experiment} "
                 f"({len(axis_units)} units)")
        nonempty = {key: values for key, values in samples.items() if values}
        if nonempty:
            table = render_distribution_table(title, "configuration",
                                              nonempty)
        else:
            table = f"{title}\n  (no successful units)"
        rate = successes / completed if completed else 0.0
        sections.append(
            f"{table}\n"
            f"success rate: {successes}/{completed} completed "
            f"({rate:.2f})")

    sections.append(render_failure_taxonomy("Failure taxonomy",
                                            _failures_dict(state)))

    snapshots = [
        state.records[unit.unit_id].metrics
        for unit in state.units
        if state.records.get(unit.unit_id) is not None
        and state.records[unit.unit_id].metrics
    ]
    if snapshots:
        from repro.telemetry import merge_snapshots

        sections.append(render_metrics_table(
            f"Merged telemetry ({len(snapshots)} instrumented units)",
            merge_snapshots(snapshots)))

    return "\n\n".join(sections)
