"""Campaign report rendering.

The report is a pure function of the journal's unit records and the
spec's deterministic grid expansion — never of wall time, cache
temperature, worker count, sharding, or how many interruptions it took
to finish.  That is what makes the acceptance check meaningful: an
interrupted-and-resumed campaign renders byte-identically to an
uninterrupted one.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.reporting import (
    render_distribution_table,
    render_failure_taxonomy,
    render_metrics_table,
    render_series,
)
from repro.campaign.engine import CampaignState


def render_status(state: CampaignState) -> str:
    """Short progress summary for ``repro campaign status``."""
    spec = state.spec
    rows = [
        ("fingerprint", state.fingerprint[:16]),
        ("axes", ", ".join(axis.experiment for axis in spec.axes)),
        ("units", str(state.total)),
        ("completed", f"{state.done}/{state.total}"),
        ("ok", str(state.ok_count)),
        ("failed", str(state.failed_count)),
        ("pending", str(len(state.pending))),
        ("runs recorded", str(state.runs)),
    ]
    return render_series(f"Campaign {spec.name!r}", rows)


def build_report(state: CampaignState) -> str:
    """Full campaign report: overview, per-axis tables, failures, metrics."""
    spec = state.spec
    sections: List[str] = []

    sections.append(render_series(f"Campaign {spec.name!r}", [
        ("fingerprint", state.fingerprint[:16]),
        ("units", str(state.total)),
        ("ok", str(state.ok_count)),
        ("failed", str(state.failed_count)),
        ("pending", str(len(state.pending))),
    ]))

    for axis_index, axis in enumerate(spec.axes):
        axis_units = [u for u in state.units if u.axis == axis_index]
        samples: Dict[str, List[int]] = {}
        completed = successes = 0
        for unit in axis_units:
            samples.setdefault(unit.config_key, [])
            record = state.records.get(unit.unit_id)
            if record is None or record.status != "ok":
                continue
            completed += 1
            result = record.result or {}
            if result.get("success"):
                successes += 1
                samples[unit.config_key].append(int(result["attempts"]))
        title = (f"axis {axis_index}: {axis.experiment} "
                 f"({len(axis_units)} units)")
        nonempty = {key: values for key, values in samples.items() if values}
        if nonempty:
            table = render_distribution_table(title, "configuration",
                                              nonempty)
        else:
            table = f"{title}\n  (no successful units)"
        rate = successes / completed if completed else 0.0
        sections.append(
            f"{table}\n"
            f"success rate: {successes}/{completed} completed "
            f"({rate:.2f})")

    failures: Dict[str, List[str]] = {}
    for unit in state.units:
        record = state.records.get(unit.unit_id)
        if record is None or record.status == "ok":
            continue
        kind = (record.failure or {}).get("kind", "unknown")
        failures.setdefault(kind, []).append(unit.unit_id)
    sections.append(render_failure_taxonomy("Failure taxonomy", failures))

    snapshots = [
        state.records[unit.unit_id].metrics
        for unit in state.units
        if state.records.get(unit.unit_id) is not None
        and state.records[unit.unit_id].metrics
    ]
    if snapshots:
        from repro.telemetry import merge_snapshots

        sections.append(render_metrics_table(
            f"Merged telemetry ({len(snapshots)} instrumented units)",
            merge_snapshots(snapshots)))

    return "\n\n".join(sections)
