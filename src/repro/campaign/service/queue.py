"""Work-stealing lease queue — the coordinator's scheduling core.

Static ``--shard i/n`` partitioning wastes the fast workers' tail: the
campaign ends when the *slowest* shard does.  The lease queue replaces
it with dynamic pull scheduling plus two recovery mechanisms:

* **lease expiry** — every grant carries a deadline; a unit whose every
  holder blew its deadline is re-queued (the holder was SIGKILLed, hung
  past the watchdog, or lost its network);
* **work stealing** — an *idle* worker (nothing pending) may be granted
  a unit that is still leased to someone else, once that lease has been
  outstanding for ``steal_after_s`` seconds.  The first result to arrive
  wins; later duplicates are discarded, which keeps the journal — and
  therefore the report — byte-identical to a serial run, because trials
  are seed-deterministic (two executions of one unit produce the same
  record).

The class is deliberately pure: no clocks, no sockets, no I/O — every
method takes ``now`` explicitly, so scheduling policy is unit-testable
with a scripted clock and the coordinator stays the single place that
reads wall time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set


@dataclass
class Lease:
    """One in-flight unit: who holds it and since when.

    A unit has one :class:`Lease` however many workers are currently
    racing it; ``holders`` maps each worker to its grant time.  The
    deadline is refreshed on every (re-)grant, so a unit is only
    re-queued when its *newest* holder has also gone quiet.
    """

    unit_id: str
    first_granted: float
    last_granted: float
    deadline: float
    holders: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class LeaseGrant:
    """The queue's answer to one lease request."""

    unit_id: str
    stolen: bool
    deadline: float


@dataclass(frozen=True)
class Completion:
    """What :meth:`LeaseQueue.complete` learned about a result.

    ``first`` is False for duplicates (a stolen-and-raced unit reporting
    twice); ``latency_s`` measures first grant → first result and is
    ``None`` when the unit was never granted (e.g. a record replayed
    from another journal).
    """

    first: bool
    latency_s: Optional[float] = None


class LeaseQueue:
    """Pending/in-flight bookkeeping with expiry and bounded stealing.

    Args:
        unit_ids: the units still needing execution, in expansion order.
        lease_timeout_s: grant-to-deadline horizon; a lease none of whose
            holders reported by its deadline is re-queued.
        steal_after_s: minimum age of a lease before an idle worker may
            steal it.  Stealing resets the age, so a straggler unit is
            re-granted at most once per ``steal_after_s`` — the race is
            bounded, not a stampede.
    """

    def __init__(self, unit_ids: Sequence[str],
                 lease_timeout_s: float = 60.0,
                 steal_after_s: float = 2.0) -> None:
        self.lease_timeout_s = float(lease_timeout_s)
        self.steal_after_s = float(steal_after_s)
        self._pending: Deque[str] = deque(unit_ids)
        self._inflight: Dict[str, Lease] = {}
        self._done: Set[str] = set()
        self._first_grant: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Units waiting for their first (or re-queued) grant."""
        return len(self._pending)

    @property
    def inflight_count(self) -> int:
        """Units currently leased to at least one worker."""
        return len(self._inflight)

    @property
    def drained(self) -> bool:
        """Nothing pending and nothing in flight."""
        return not self._pending and not self._inflight

    def holders(self, unit_id: str) -> List[str]:
        """The workers currently racing ``unit_id`` (empty if none)."""
        lease = self._inflight.get(unit_id)
        return sorted(lease.holders) if lease else []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def requeue_expired(self, now: float) -> List[str]:
        """Re-queue every lease whose deadline has passed.

        Returns the re-queued unit ids (the coordinator counts them).
        """
        expired = [lease for lease in self._inflight.values()
                   if now > lease.deadline]
        for lease in expired:
            del self._inflight[lease.unit_id]
            self._pending.append(lease.unit_id)
        return [lease.unit_id for lease in expired]

    def lease(self, worker: str, now: float) -> Optional[LeaseGrant]:
        """Grant the next unit to ``worker``, stealing if necessary.

        Pending units are granted in queue order.  With nothing pending,
        the oldest sufficiently-aged lease not already held by this
        worker is re-granted as a steal.  Returns ``None`` when there is
        nothing to hand out (the worker should back off and retry).
        """
        self.requeue_expired(now)
        deadline = now + self.lease_timeout_s
        if self._pending:
            unit_id = self._pending.popleft()
            lease = Lease(unit_id=unit_id, first_granted=now,
                          last_granted=now, deadline=deadline,
                          holders={worker: now})
            self._inflight[unit_id] = lease
            self._first_grant.setdefault(unit_id, now)
            return LeaseGrant(unit_id=unit_id, stolen=False,
                              deadline=deadline)
        candidates = [lease for lease in self._inflight.values()
                      if worker not in lease.holders
                      and now - lease.last_granted >= self.steal_after_s]
        if not candidates:
            return None
        victim = min(candidates,
                     key=lambda lease: (lease.last_granted, lease.unit_id))
        victim.holders[worker] = now
        victim.last_granted = now
        victim.deadline = deadline
        return LeaseGrant(unit_id=victim.unit_id, stolen=True,
                          deadline=deadline)

    def complete(self, unit_id: str, now: float) -> Completion:
        """Record a result for ``unit_id``; first occurrence wins."""
        if unit_id in self._done:
            return Completion(first=False)
        self._done.add(unit_id)
        self._inflight.pop(unit_id, None)
        try:
            self._pending.remove(unit_id)
        except ValueError:
            pass
        granted = self._first_grant.pop(unit_id, None)
        latency = (now - granted) if granted is not None else None
        return Completion(first=True, latency_s=latency)
