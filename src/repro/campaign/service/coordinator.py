"""The campaign coordinator: leases, journal merge, status stream.

One :class:`Coordinator` owns at most one *active* campaign at a time:
its spec, the expanded grid, a :class:`~repro.campaign.service.queue.
LeaseQueue` over the units that still lack journal records, and — the
correctness keystone — the **single** :class:`~repro.campaign.journal.
JournalWriter`.  Workers stream per-unit results in over the wire; the
coordinator deduplicates them first-wins (a stolen-and-raced unit is
journaled exactly once) and appends them to the same crash-tolerant
JSONL file ``repro campaign run`` writes.  Report rendering stays a
pure function of that journal, so the PR 5 property — kill anything
mid-run, resume, byte-identical report — carries over verbatim to the
distributed path.

Wall-clock reads here are scheduling plumbing only (lease deadlines,
steal ages, latency telemetry); they never feed trial bytes, which is
why :mod:`repro.campaign` is exempt from the ``nondeterministic-call``
lint.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Union

from repro.campaign.engine import (
    CampaignState,
    TrialUnit,
    expand_units,
    open_journal,
    units_by_id,
)
from repro.campaign.journal import JournalWriter, record_from_payload
from repro.campaign.report import (
    build_report,
    report_dict,
    render_status,
    status_dict,
)
from repro.campaign.service.queue import LeaseQueue
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError, ServiceError
from repro.telemetry.metrics import MetricsRegistry

#: Buckets for the lease-latency histogram (seconds, grant → result).
LEASE_LATENCY_BUCKETS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0)

#: Suggested worker back-off when the queue has nothing to hand out.
DEFAULT_RETRY_S = 0.2


@dataclass
class ActiveCampaign:
    """Everything the coordinator tracks for the campaign being served."""

    spec: CampaignSpec
    state: CampaignState
    units: Dict[str, TrialUnit]
    queue: LeaseQueue
    writer: JournalWriter
    journal_path: Path

    @property
    def complete(self) -> bool:
        """Every grid unit has a journal record."""
        return self.state.done >= self.state.total


class Coordinator:
    """Serves campaign units to workers and merges their results.

    All methods are synchronous and must be called from one thread (the
    asyncio server's event loop, in practice); the class itself does no
    I/O beyond the journal append.

    Args:
        lease_timeout_s: per-lease deadline before a unit is re-queued.
        steal_after_s: lease age before idle workers may steal it.
        fsync: force journal records to stable storage per append.
        clock: monotonic time source (injectable for tests).
        metrics: registry for service telemetry (enabled by default —
            this is observability of the service itself, not of trials).
    """

    def __init__(self,
                 lease_timeout_s: float = 60.0,
                 steal_after_s: float = 2.0,
                 fsync: bool = False,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.lease_timeout_s = lease_timeout_s
        self.steal_after_s = steal_after_s
        self.fsync = fsync
        self._clock = clock
        self._campaign: Optional[ActiveCampaign] = None
        self._workers_seen: Set[str] = set()
        self._subscribers: List[Any] = []  # asyncio.Queue, untyped on 3.9
        self._on_complete: List[Callable[[], None]] = []
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(enabled=True)
        self._m_leased = self.metrics.counter("service.units.leased")
        self._m_completed = self.metrics.counter("service.units.completed")
        self._m_stolen = self.metrics.counter("service.units.stolen")
        self._m_requeued = self.metrics.counter("service.units.requeued")
        self._m_duplicate = self.metrics.counter("service.units.duplicate")
        self._m_stale = self.metrics.counter("service.results.stale")
        self._m_latency = self.metrics.histogram(
            "service.lease.latency_s", LEASE_LATENCY_BUCKETS)

    # ------------------------------------------------------------------
    # Campaign lifecycle
    # ------------------------------------------------------------------

    @property
    def campaign(self) -> Optional[ActiveCampaign]:
        """The campaign being served, if any."""
        return self._campaign

    @property
    def complete(self) -> bool:
        """Whether the active campaign (if any) has fully drained."""
        return self._campaign is not None and self._campaign.complete

    def submit(self, spec: CampaignSpec,
               journal_path: Union[str, Path]) -> CampaignState:
        """Load (or resume) a campaign and start serving its units.

        Re-submitting while a campaign is still incomplete is refused;
        submitting over a *finished* campaign replaces it.  An existing
        journal at ``journal_path`` is attached fingerprint-checked, so
        a coordinator restart resumes exactly the pending units.
        """
        if self._campaign is not None and not self._campaign.complete:
            raise ConfigurationError(
                f"campaign {self._campaign.spec.name!r} is still being "
                f"served ({self._campaign.state.done}/"
                f"{self._campaign.state.total} units done); wait for it "
                f"to drain before submitting another")
        if self._campaign is not None:
            self._campaign.writer.close()
            self._campaign = None
        units = expand_units(spec)
        writer, records, runs = open_journal(spec, journal_path,
                                             fsync=self.fsync)
        state = CampaignState(spec=spec, fingerprint=spec.fingerprint,
                              units=units, records=records, runs=runs + 1)
        pending = [u.unit_id for u in state.pending]
        writer.record_run(shard=(0, 1), jobs=None, budget=None,
                          pending=len(pending))
        self._campaign = ActiveCampaign(
            spec=spec, state=state, units=units_by_id(units),
            queue=LeaseQueue(pending,
                             lease_timeout_s=self.lease_timeout_s,
                             steal_after_s=self.steal_after_s),
            writer=writer, journal_path=Path(journal_path))
        if self._campaign.complete:  # resumed an already-finished journal
            self._notify_complete()
        return state

    def close(self) -> None:
        """Release the journal writer (idempotent)."""
        if self._campaign is not None:
            self._campaign.writer.close()

    # ------------------------------------------------------------------
    # Worker protocol (dict in, dict out — transport-agnostic)
    # ------------------------------------------------------------------

    def handle_hello(self, worker: str) -> Dict[str, Any]:
        """A worker announced itself; ship it the active spec."""
        self._workers_seen.add(worker)
        if self._campaign is None:
            return {"op": "idle", "retry_s": DEFAULT_RETRY_S}
        return {"op": "welcome",
                "fingerprint": self._campaign.spec.fingerprint,
                "spec": self._campaign.spec.to_dict()}

    def handle_lease(self, worker: str,
                     fingerprint: Optional[str]) -> Dict[str, Any]:
        """Grant the worker a unit, tell it to wait, or declare drained."""
        campaign = self._campaign
        if campaign is None:
            return {"op": "idle", "retry_s": DEFAULT_RETRY_S}
        if fingerprint != campaign.spec.fingerprint:
            return {"op": "error", "error": "stale campaign fingerprint"}
        if campaign.complete:
            return {"op": "drained"}
        now = self._clock()
        requeued = campaign.queue.requeue_expired(now)
        if requeued:
            self._m_requeued.inc(len(requeued))
        grant = campaign.queue.lease(worker, now)
        if grant is None:
            return {"op": "wait", "retry_s": DEFAULT_RETRY_S}
        self._m_leased.inc()
        if grant.stolen:
            self._m_stolen.inc()
        return {"op": "unit", "unit_id": grant.unit_id,
                "stolen": grant.stolen,
                "timeout_s": self.lease_timeout_s}

    def handle_result(self, worker: str, fingerprint: Optional[str],
                      payload: Dict[str, Any]) -> Dict[str, Any]:
        """Merge one unit result into the journal (first-wins dedup)."""
        campaign = self._campaign
        if campaign is None or fingerprint != campaign.spec.fingerprint:
            self._m_stale.inc()
            return {"op": "error", "error": "stale campaign fingerprint"}
        record = record_from_payload(payload)
        if record.unit_id not in campaign.units:
            raise ServiceError(
                f"worker {worker!r} reported unknown unit "
                f"{record.unit_id!r}")
        completion = campaign.queue.complete(record.unit_id, self._clock())
        if not completion.first or record.unit_id in campaign.state.records:
            self._m_duplicate.inc()
            return {"op": "ack", "duplicate": True,
                    "done": campaign.complete}
        campaign.state.records[record.unit_id] = record
        campaign.writer.record_unit(record)
        self._m_completed.inc()
        if completion.latency_s is not None:
            self._m_latency.observe(completion.latency_s)
        self._publish({"event": "unit",
                       "unit_id": record.unit_id,
                       "status": record.status,
                       "cached": record.cached,
                       "done": campaign.state.done,
                       "total": campaign.state.total})
        if campaign.complete:
            self._notify_complete()
        return {"op": "ack", "duplicate": False, "done": campaign.complete}

    def handle_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one worker-protocol message (the transport calls this)."""
        op = message.get("op")
        worker = str(message.get("worker", "?"))
        fingerprint = message.get("fingerprint")
        if op == "hello":
            return self.handle_hello(worker)
        if op == "lease":
            return self.handle_lease(worker, fingerprint)
        if op == "result":
            record = message.get("record")
            if not isinstance(record, dict):
                return {"op": "error", "error": "result without a record"}
            return self.handle_result(worker, fingerprint, record)
        return {"op": "error", "error": f"unknown op {op!r}"}

    # ------------------------------------------------------------------
    # Status / report / events
    # ------------------------------------------------------------------

    def status_payload(self) -> Dict[str, Any]:
        """Current status: campaign counters plus service telemetry."""
        service: Dict[str, Any] = {
            "workers_seen": len(self._workers_seen),
            "counters": {c: v for c, v in sorted(
                self.metrics.snapshot().get("counters", {}).items())},
        }
        if self._campaign is None:
            return {"campaign": None, "service": service}
        campaign = self._campaign
        payload = status_dict(campaign.state)
        payload["journal"] = str(campaign.journal_path)
        service["inflight"] = campaign.queue.inflight_count
        service["queued"] = campaign.queue.pending_count
        return {"campaign": payload, "service": service}

    def report_text(self) -> str:
        """The full text report of the active campaign."""
        if self._campaign is None:
            raise ServiceError("no campaign loaded")
        return build_report(self._campaign.state)

    def report_payload(self) -> Dict[str, Any]:
        """The machine-readable report of the active campaign."""
        if self._campaign is None:
            raise ServiceError("no campaign loaded")
        return report_dict(self._campaign.state)

    def status_text(self) -> str:
        """The short text status of the active campaign."""
        if self._campaign is None:
            raise ServiceError("no campaign loaded")
        return render_status(self._campaign.state)

    def subscribe(self, queue: Any) -> None:
        """Attach an event sink (an ``asyncio.Queue``-alike with
        ``put_nowait``); it immediately receives a ``status`` event, and
        a ``done`` event right away if the campaign already drained."""
        self._subscribers.append(queue)
        queue.put_nowait({"event": "status", **self.status_payload()})
        if self.complete:
            queue.put_nowait(self._done_event())

    def unsubscribe(self, queue: Any) -> None:
        """Detach an event sink (no-op when unknown)."""
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def add_completion_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the active campaign drains (and
        immediately if it already has)."""
        self._on_complete.append(callback)
        if self.complete:
            callback()

    def _publish(self, event: Dict[str, Any]) -> None:
        for queue in list(self._subscribers):
            queue.put_nowait(event)

    def _done_event(self) -> Dict[str, Any]:
        return {"event": "done", **self.status_payload()}

    def _notify_complete(self) -> None:
        self._publish(self._done_event())
        for callback in list(self._on_complete):
            callback()


def unit_record_payload(record: Any) -> Dict[str, Any]:
    """Serialise a :class:`UnitRecord` for the wire (plain JSON dict)."""
    return dict(asdict(record))
