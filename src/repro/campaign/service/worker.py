"""The campaign worker: lease, execute, report, repeat.

A worker is a plain blocking-socket client of the coordinator's worker
channel (newline-delimited JSON over TCP).  It learns the campaign spec
from the ``welcome`` reply, re-expands the unit grid deterministically
on its own side — only unit ids ever cross the wire — and executes each
leased unit through :func:`repro.runner.run_unit_robust`, so the
timeout/retry/quarantine taxonomy of ``repro campaign run`` applies
per-unit here too.  Records are built by the same
:func:`repro.campaign.engine.unit_record` the serial engine uses, which
is what makes the merged journal byte-identical to a serial run.

Workers survive coordinator restarts: a dropped connection triggers
bounded reconnect attempts (``reconnect_s`` budget), and a fingerprint
mismatch after reconnect simply re-runs the hello handshake against the
resumed campaign.  Because the transport is a socket from day one,
pointing a worker at another host is a command-line change, not a code
change.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import time
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.campaign.engine import TrialUnit, expand_units, unit_record, units_by_id
from repro.campaign.registry import run_unit_trial
from repro.campaign.service.coordinator import unit_record_payload
from repro.campaign.spec import CampaignSpec
from repro.errors import ServiceError
from repro.runner import run_unit_robust

#: Default reconnect budget: how long a worker keeps retrying a dead
#: coordinator before giving up (covers a restart-and-resume window).
DEFAULT_RECONNECT_S = 30.0

#: Pause between reconnect attempts.
RECONNECT_BACKOFF_S = 0.25


class WorkerChannel:
    """One JSON-lines request/response connection to the coordinator."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._fh = sock.makefile("rwb")

    @classmethod
    def connect(cls, host: str, port: int,
                timeout_s: float = 10.0) -> "WorkerChannel":
        """Open a TCP connection to ``host:port``."""
        sock = socket.create_connection((host, port), timeout=timeout_s)
        sock.settimeout(None)  # exchanges block until the peer answers
        return cls(sock)

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, block for the one-line reply."""
        blob = (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")
        self._fh.write(blob)
        self._fh.flush()
        line = self._fh.readline()
        if not line:
            raise ServiceError("coordinator closed the connection")
        reply = json.loads(line)
        if not isinstance(reply, dict):
            raise ServiceError(f"malformed coordinator reply: {reply!r}")
        return reply

    def close(self) -> None:
        """Tear the connection down (idempotent)."""
        try:
            self._fh.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "WorkerChannel":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _execute_unit(spec: CampaignSpec, unit: TrialUnit) -> Dict[str, Any]:
    """Run one leased unit and serialise its journal record."""
    outcome = run_unit_robust(run_unit_trial, unit.trial,
                              timeout_s=spec.timeout_s,
                              max_retries=spec.max_retries,
                              backoff_s=spec.backoff_s)
    record = unit_record(unit, outcome.result, outcome, cached=False)
    return unit_record_payload(record)


def _serve_session(channel: WorkerChannel, worker_id: str) -> str:
    """Drive one connection until it yields; returns why it stopped.

    Return values: ``"drained"`` (campaign finished), ``"idle"`` (no
    campaign loaded yet), ``"stale"`` (fingerprint changed under us —
    re-hello wanted).
    """
    welcome = channel.request({"op": "hello", "worker": worker_id})
    op = welcome.get("op")
    if op == "idle":
        return "idle"  # coordinator is up but has no campaign loaded
    if op != "welcome":
        raise ServiceError(f"unexpected hello reply: {welcome!r}")
    fingerprint = welcome.get("fingerprint")
    if not isinstance(fingerprint, str):
        raise ServiceError(f"welcome reply lacks a fingerprint: {welcome!r}")
    spec_dict = welcome.get("spec")
    if not isinstance(spec_dict, dict):
        raise ServiceError(f"welcome reply lacks a spec: {welcome!r}")
    spec = CampaignSpec.from_dict(spec_dict)
    if spec.fingerprint != fingerprint:
        raise ServiceError("coordinator spec does not match its "
                           "advertised fingerprint")
    units = units_by_id(expand_units(spec))
    while True:
        reply = channel.request({"op": "lease", "worker": worker_id,
                                 "fingerprint": fingerprint})
        op = reply.get("op")
        if op == "drained":
            return "drained"
        if op == "idle":
            # The coordinator restarted (or our campaign was replaced and
            # closed) between leases; re-handshake instead of erroring.
            return "idle"
        if op == "wait":
            time.sleep(float(reply.get("retry_s", 0.2)))
            continue
        if op == "error":
            return "stale"
        if op != "unit":
            raise ServiceError(f"unexpected lease reply: {reply!r}")
        unit_id = str(reply.get("unit_id"))
        unit = units.get(unit_id)
        if unit is None:
            raise ServiceError(f"leased unknown unit {unit_id!r}")
        payload = _execute_unit(spec, unit)
        ack = channel.request({"op": "result", "worker": worker_id,
                               "fingerprint": fingerprint,
                               "record": payload})
        if ack.get("op") not in ("ack", "error"):
            raise ServiceError(f"unexpected result reply: {ack!r}")
        if ack.get("op") == "ack" and ack.get("done"):
            return "drained"  # our result finished the campaign


def run_worker(host: str, port: int, worker_id: Optional[str] = None,
               oneshot: bool = True,
               reconnect_s: float = DEFAULT_RECONNECT_S) -> int:
    """Work a coordinator until its campaign drains.

    Args:
        host, port: the coordinator's address.
        worker_id: stable identity for lease bookkeeping (defaults to
            ``worker-<pid>``).
        oneshot: exit 0 once the campaign drains; with ``False`` the
            worker keeps polling for the next campaign indefinitely.
        reconnect_s: budget of *consecutive* unreachable-coordinator
            time before giving up — any successful session resets it,
            so a coordinator restart mid-campaign is survived as long
            as it comes back within this window.

    Returns the process exit code (0 = drained / finished cleanly).
    """
    name = worker_id or f"worker-{os.getpid()}"
    down_since: Optional[float] = None
    while True:
        try:
            with WorkerChannel.connect(host, port) as channel:
                stopped = _serve_session(channel, name)
            down_since = None
        except (OSError, ServiceError, ValueError):
            now = time.monotonic()
            if down_since is None:
                down_since = now
            if now - down_since > reconnect_s:
                return 1
            time.sleep(RECONNECT_BACKOFF_S)
            continue
        if stopped == "drained" and oneshot:
            return 0
        # idle / stale / non-oneshot drain: pause, then re-handshake.
        time.sleep(RECONNECT_BACKOFF_S)


def worker_entry(host: str, port: int, worker_id: str,
                 oneshot: bool = True,
                 reconnect_s: float = DEFAULT_RECONNECT_S,
                 close_fds: Sequence[int] = ()) -> None:
    """Process target wrapping :func:`run_worker` (exit code = result).

    ``close_fds`` names file descriptors the fork inherited but must
    not keep — above all the coordinator's *listening* socket, which
    would otherwise hold the port hostage after a coordinator crash
    and block the restarted coordinator from rebinding it.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    raise SystemExit(run_worker(host, port, worker_id=worker_id,
                                oneshot=oneshot, reconnect_s=reconnect_s))


def spawn_worker(host: str, port: int, worker_id: str,
                 oneshot: bool = True,
                 reconnect_s: float = DEFAULT_RECONNECT_S,
                 close_fds: Sequence[int] = (),
                 ) -> "multiprocessing.process.BaseProcess":
    """Start a worker in a child process and return its handle.

    Uses the ``fork`` start method where available so experiments
    registered by the parent (e.g. test fixtures) are inherited — the
    same convention :func:`repro.runner.run_units_robust` relies on.
    Pass the coordinator's listening descriptors via ``close_fds`` so
    the child releases them immediately (see :func:`worker_entry`).
    """
    try:
        ctx: Any = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()
    # NOT daemonic: the worker itself forks a killable child per unit
    # (run_units_robust), and daemons may not have children.
    process = ctx.Process(target=worker_entry,
                          args=(host, port, worker_id),
                          kwargs={"oneshot": oneshot,
                                  "reconnect_s": reconnect_s,
                                  "close_fds": tuple(close_fds)},
                          daemon=False)
    process.start()
    return process


def parse_endpoint(value: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (for ``repro campaign worker --connect``)."""
    host, sep, port = value.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ServiceError(
            f"expected HOST:PORT, got {value!r}")
    return host, int(port)
