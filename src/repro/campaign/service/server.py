"""The coordinator's network face: one port, two protocols.

A single ``asyncio`` TCP server carries both the worker channel and the
HTTP API.  The handler peeks at the first byte of each connection: ``{``
means a newline-delimited-JSON worker channel (every worker message is
one JSON object, so it must start with ``{``), anything else is parsed
as an HTTP/1.1 request.  One port keeps deployment a single address —
workers and ``repro campaign status --url`` point at the same place —
and makes the later multi-host story purely a configuration change.

The HTTP side is deliberately minimal (hand-rolled request parsing,
``Connection: close`` responses) because the standard library offers no
asyncio HTTP server and this API serves a handful of trusted clients,
not the open internet.  Endpoints:

* ``GET /healthz`` — liveness probe.
* ``POST /campaign`` — submit a :class:`~repro.campaign.spec.
  CampaignSpec` (raw spec JSON, or ``{"spec": ..., "journal": ...}``).
* ``GET /status`` — machine-readable status; ``?follow=1`` streams
  newline-delimited JSON events until the campaign drains.
* ``GET /report`` — text report; ``?format=json`` for the dict form.
* ``GET /metrics`` — the coordinator's telemetry snapshot.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.campaign.service.coordinator import Coordinator
from repro.campaign.spec import CampaignSpec
from repro.errors import ReproError, ServiceError

#: Hard cap on worker-channel line length and HTTP body size (16 MiB) —
#: a full unit record with merged telemetry fits with huge margin.
MAX_MESSAGE_BYTES = 16 * 1024 * 1024

_HTTP_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


def _http_response(status: int, body: bytes,
                   content_type: str = "application/json") -> bytes:
    """Serialise a complete ``Connection: close`` HTTP/1.1 response."""
    reason = _HTTP_STATUS_TEXT.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


def _json_body(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _parse_query(raw: str) -> Dict[str, str]:
    """Split ``a=1&b=2`` (the API needs no percent-decoding)."""
    query: Dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[key] = value
    return query


class ServiceServer:
    """Binds the :class:`Coordinator` to a TCP port.

    Args:
        coordinator: the campaign coordinator to expose.
        host: bind address (use ``127.0.0.1`` unless you mean it).
        port: TCP port; 0 picks an ephemeral one (read :attr:`port`
            after :meth:`start`).
    """

    def __init__(self, coordinator: Coordinator,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.coordinator = coordinator
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.StreamWriter]" = set()

    @property
    def port(self) -> int:
        """The bound port (valid once started)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def listen_fds(self) -> "tuple[int, ...]":
        """The listening descriptors — forked children must close these
        (via ``spawn_worker(close_fds=...)``) or a crashed coordinator's
        port stays bound and a restart cannot reclaim it."""
        if self._server is None:
            return ()
        return tuple(sock.fileno() for sock in self._server.sockets or ())

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port)

    async def stop(self) -> None:
        """Stop accepting, then close every open connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)  # let handlers observe the EOF

    # ------------------------------------------------------------------
    # Connection dispatch
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Sniff the first byte and route to the matching protocol."""
        self._connections.add(writer)
        try:
            first = await reader.read(1)
            if not first:
                return
            if first == b"{":
                await self._serve_worker(first, reader, writer)
            else:
                await self._serve_http(first, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-exchange; nothing to clean up
        except asyncio.CancelledError:
            return  # shutdown while blocked on this peer — close quietly
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # Worker channel (newline-delimited JSON)
    # ------------------------------------------------------------------

    async def _serve_worker(self, first: bytes,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """Request/response loop: one JSON object per line, each way."""
        pending: bytes = first
        while True:
            line = await reader.readline()
            if pending:
                line, pending = pending + line, b""
            if not line:
                return
            if len(line) > MAX_MESSAGE_BYTES:
                raise ServiceError("worker message exceeds size cap")
            try:
                message = json.loads(line)
            except ValueError:
                reply: Dict[str, Any] = {"op": "error",
                                         "error": "malformed JSON"}
            else:
                try:
                    # Bounded blocking: the coordinator is synchronous by
                    # contract (single loop thread) and its only I/O is
                    # one buffered journal-line append (+ opt-in fsync);
                    # an executor hop would serialise on the same single
                    # writer anyway while adding cross-thread hand-off.
                    reply = self.coordinator.handle_message(  # lint-ok: blocking-in-async bounded
                        message)
                except ReproError as exc:
                    reply = {"op": "error", "error": str(exc)}
            writer.write(_json_body(reply))
            await writer.drain()

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------

    async def _serve_http(self, first: bytes,
                          reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """Parse one request, route it, send one response, close."""
        try:
            method, path, query, body = await self._read_request(first,
                                                                 reader)
        except ServiceError as exc:
            writer.write(_http_response(
                400, _json_body({"error": str(exc)})))
            await writer.drain()
            return
        if path == "/status" and query.get("follow") in ("1", "true"):
            await self._stream_status(writer)
            return
        # Bounded blocking: routing is in-memory except POST /campaign,
        # where the journal replay *is* the submit operation and must
        # finish before any worker may lease (same single-writer
        # invariant as the worker channel above).
        status, payload, content_type = self._route(  # lint-ok: blocking-in-async bounded
            method, path, query, body)
        writer.write(_http_response(status, payload, content_type))
        await writer.drain()

    async def _read_request(
            self, first: bytes, reader: asyncio.StreamReader,
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        """Read request line, headers, and Content-Length-framed body."""
        head = first + await reader.readuntil(b"\r\n\r\n")
        request_line, _, header_blob = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ServiceError(f"malformed request line: {parts!r}")
        method, target = parts[0].upper(), parts[1]
        path, _, raw_query = target.partition("?")
        length = 0
        for header in header_blob.decode("latin-1").split("\r\n"):
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ServiceError(f"bad Content-Length: {value!r}")
        if length > MAX_MESSAGE_BYTES:
            raise ServiceError("request body exceeds size cap")
        body = await reader.readexactly(length) if length else b""
        return method, path, _parse_query(raw_query), body

    def _route(self, method: str, path: str, query: Dict[str, str],
               body: bytes) -> Tuple[int, bytes, str]:
        """Dispatch one parsed request; returns (status, body, type)."""
        try:
            if path == "/healthz" and method == "GET":
                return 200, _json_body({"ok": True}), "application/json"
            if path == "/campaign" and method == "POST":
                return self._handle_submit(body)
            if path == "/status" and method == "GET":
                return (200, _json_body(self.coordinator.status_payload()),
                        "application/json")
            if path == "/report" and method == "GET":
                if query.get("format") == "json":
                    return (200,
                            _json_body(self.coordinator.report_payload()),
                            "application/json")
                text = self.coordinator.report_text()
                return (200, (text + "\n").encode("utf-8"),
                        "text/plain; charset=utf-8")
            if path == "/metrics" and method == "GET":
                return (200,
                        _json_body(self.coordinator.metrics.snapshot()),
                        "application/json")
            if path in ("/healthz", "/campaign", "/status", "/report",
                        "/metrics"):
                return (405, _json_body({"error": f"{method} not allowed "
                                                  f"on {path}"}),
                        "application/json")
            return (404, _json_body({"error": f"no such endpoint {path}"}),
                    "application/json")
        except ReproError as exc:
            status = 409 if "still being served" in str(exc) else 400
            return (status, _json_body({"error": str(exc)}),
                    "application/json")
        except ValueError as exc:
            # Report building can surface ValueError (e.g. merging
            # telemetry snapshots with mismatched schemas); translate it
            # into a response instead of crashing the connection task.
            return (500, _json_body({"error": str(exc)}),
                    "application/json")

    def _handle_submit(self, body: bytes) -> Tuple[int, bytes, str]:
        """POST /campaign: load the spec and start serving it."""
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            return (400, _json_body({"error": "body is not valid JSON"}),
                    "application/json")
        if not isinstance(payload, dict):
            return (400, _json_body({"error": "body must be an object"}),
                    "application/json")
        if "spec" in payload:
            spec_dict = payload["spec"]
            journal = payload.get("journal")
        else:
            spec_dict, journal = payload, None
        spec = CampaignSpec.from_dict(spec_dict)
        journal_path = Path(journal) if journal else Path(
            f"{spec.name}.journal.jsonl")
        state = self.coordinator.submit(spec, journal_path)
        return (200, _json_body({
            "name": spec.name,
            "fingerprint": spec.fingerprint,
            "journal": str(journal_path),
            "total": state.total,
            "pending": len(state.pending),
        }), "application/json")

    async def _stream_status(self, writer: asyncio.StreamWriter) -> None:
        """``GET /status?follow=1``: NDJSON events until the campaign
        drains.  The body is framed by connection close (no chunking),
        which every line-reading client handles."""
        events: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        self.coordinator.subscribe(events)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        try:
            while True:
                event = await events.get()
                writer.write(_json_body(event))
                await writer.drain()
                if event.get("event") == "done":
                    return
        finally:
            self.coordinator.unsubscribe(events)
