"""Distributed campaign serving: coordinator, workers, HTTP API.

The package turns ``repro campaign run``'s single-process engine into a
coordinator/worker service without changing what lands on disk:

* :mod:`~repro.campaign.service.queue` — pure work-stealing lease
  queue (deadlines, expiry re-queue, bounded stealing);
* :mod:`~repro.campaign.service.coordinator` — campaign lifecycle,
  single-writer journal merge with first-wins dedup, telemetry, and
  the status event stream;
* :mod:`~repro.campaign.service.server` — one asyncio TCP port
  speaking both the worker JSON-lines protocol and the HTTP API;
* :mod:`~repro.campaign.service.worker` — the socket worker loop
  reusing :func:`repro.runner.run_unit_robust` per leased unit;
* :mod:`~repro.campaign.service.client` — stdlib HTTP client for
  ``repro campaign submit/status/report --url``.

:func:`serve_campaign` wires them together for the common case: serve
one campaign on a local port with a managed worker fleet, block until
it drains, and return the final state.  Because results flow through
the same journal writer and record constructor as the serial engine,
the report of a served campaign is byte-identical to a serial run —
including after worker SIGKILLs and coordinator restarts.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Callable, List, Optional, Union

from repro.campaign.engine import CampaignState, load_state
from repro.campaign.service.client import (
    fetch_metrics,
    fetch_report,
    fetch_status,
    follow_status,
    parse_url,
    submit_campaign,
)
from repro.campaign.service.coordinator import ActiveCampaign, Coordinator
from repro.campaign.service.queue import Completion, Lease, LeaseGrant, LeaseQueue
from repro.campaign.service.server import ServiceServer
from repro.campaign.service.worker import (
    WorkerChannel,
    parse_endpoint,
    run_worker,
    spawn_worker,
)
from repro.campaign.spec import CampaignSpec
from repro.errors import ServiceError

__all__ = [
    "ActiveCampaign",
    "Completion",
    "Coordinator",
    "Lease",
    "LeaseGrant",
    "LeaseQueue",
    "ServiceServer",
    "WorkerChannel",
    "fetch_metrics",
    "fetch_report",
    "fetch_status",
    "follow_status",
    "parse_endpoint",
    "parse_url",
    "run_worker",
    "serve_campaign",
    "spawn_worker",
    "submit_campaign",
]

#: How often the serve loop checks its managed workers for liveness.
_WATCHDOG_PERIOD_S = 0.25


async def _serve_async(coordinator: Coordinator,
                       workers: int,
                       host: str,
                       port: int,
                       keep_alive: bool,
                       on_event: Optional[Callable[[dict], None]],
                       on_listening: Optional[Callable[[int], None]],
                       ) -> CampaignState:
    """The event-loop body of :func:`serve_campaign`.

    The campaign is already submitted to ``coordinator`` — spec loading
    and journal replay are synchronous file I/O and happen in
    :func:`serve_campaign` *before* the event loop exists, so the server
    never serves connections while blocked on disk.
    """
    server = ServiceServer(coordinator, host=host, port=port)
    await server.start()
    fleet: List[Any] = []
    try:
        if on_listening is not None:
            on_listening(server.port)
        done = asyncio.Event()
        coordinator.add_completion_callback(done.set)
        events: "asyncio.Queue[dict]" = asyncio.Queue()
        if on_event is not None:
            coordinator.subscribe(events)
        fleet = [spawn_worker(host, server.port, f"local-{i}",
                              close_fds=server.listen_fds)
                 for i in range(workers)]
        while not done.is_set() or keep_alive:
            try:
                await asyncio.wait_for(done.wait(),
                                       timeout=_WATCHDOG_PERIOD_S)
            except asyncio.TimeoutError:
                pass
            while on_event is not None and not events.empty():
                on_event(events.get_nowait())
            if (fleet and not done.is_set()
                    and all(p.exitcode is not None for p in fleet)):
                raise ServiceError(
                    "every managed worker exited before the campaign "
                    "drained — nothing can make progress")
        while on_event is not None and not events.empty():
            on_event(events.get_nowait())
        campaign = coordinator.campaign
        assert campaign is not None
        return campaign.state
    finally:
        # Join through the executor: a blocking join would freeze the
        # event loop, and workers still waiting for their final
        # lease -> drained reply would hang until the timeout.
        loop = asyncio.get_running_loop()
        for process in fleet:
            await loop.run_in_executor(None, process.join, 5.0)
            if process.exitcode is None:
                process.terminate()
                await loop.run_in_executor(None, process.join, 5.0)
        await server.stop()
        coordinator.close()


def serve_campaign(spec: Optional[CampaignSpec],
                   journal_path: Union[str, Path],
                   workers: int = 2,
                   host: str = "127.0.0.1",
                   port: int = 0,
                   lease_timeout_s: float = 60.0,
                   steal_after_s: float = 2.0,
                   fsync: bool = False,
                   keep_alive: bool = False,
                   on_event: Optional[Callable[[dict], None]] = None,
                   on_listening: Optional[Callable[[int], None]] = None,
                   ) -> CampaignState:
    """Serve one campaign until it drains; return the final state.

    Starts a coordinator on ``host:port`` (0 = ephemeral; learn the
    bound port via ``on_listening``), submits ``spec`` — or, when
    ``spec`` is ``None``, resumes the campaign recorded in an existing
    ``journal_path`` — spawns ``workers`` managed local worker
    processes, and blocks until every unit has a journal record.
    External ``repro campaign worker --connect`` processes may join
    (and steal work from) the managed fleet at any time; with
    ``workers=0`` the service relies on them entirely.

    ``on_event`` receives the coordinator's status/unit/done events in
    order (e.g. to drive a progress line); ``keep_alive`` keeps serving
    after the campaign drains (for submit-over-HTTP workflows).

    Raises :class:`ServiceError` when every *managed* worker has died
    while units remain — external workers keep a partially-dead fleet
    making progress, so losing some of N is fine; losing all of them
    with no external help would hang forever.
    """
    coordinator = Coordinator(lease_timeout_s=lease_timeout_s,
                              steal_after_s=steal_after_s, fsync=fsync)
    # Load and submit synchronously, before the event loop exists:
    # journal replay reads the whole file, and doing it inside the loop
    # would stall every early worker connection (and trip the
    # blocking-in-async lint, which is how this placement is enforced).
    if spec is None:
        spec = load_state(journal_path).spec
    coordinator.submit(spec, journal_path)
    return asyncio.run(_serve_async(
        coordinator, workers, host, port, keep_alive, on_event,
        on_listening))
