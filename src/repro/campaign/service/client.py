"""Thin stdlib HTTP client for the campaign service.

``repro campaign submit/status/report --url`` go through here, as can
any script: the functions speak plain ``http.client`` (no third-party
dependency), return the parsed JSON payloads, and raise
:class:`~repro.errors.ServiceError` with the server's error message on
non-200 responses.  :func:`follow_status` yields the ``/status?follow``
NDJSON event stream line by line until the terminal ``done`` event.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import ServiceError


def parse_url(url: str) -> Tuple[str, int]:
    """Extract host and port from ``http://HOST:PORT`` (or ``HOST:PORT``)."""
    trimmed = url.strip()
    for prefix in ("http://", "https://"):
        if trimmed.startswith(prefix):
            if prefix == "https://":
                raise ServiceError("the campaign service speaks plain "
                                   "HTTP; use an http:// URL")
            trimmed = trimmed[len(prefix):]
    trimmed = trimmed.rstrip("/")
    host, sep, port = trimmed.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ServiceError(f"expected http://HOST:PORT, got {url!r}")
    return host, int(port)


def _request(url: str, method: str, path: str,
             body: Optional[bytes] = None,
             timeout_s: float = 30.0) -> Tuple[int, bytes]:
    """One request/response exchange; returns (status, raw body)."""
    host, port = parse_url(url)
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    except OSError as exc:
        raise ServiceError(f"cannot reach campaign service at {url}: "
                           f"{exc}") from exc
    finally:
        conn.close()


def _json_or_error(status: int, raw: bytes) -> Dict[str, Any]:
    """Parse a JSON payload, surfacing server-side errors as exceptions."""
    try:
        payload = json.loads(raw)
    except ValueError:
        payload = {"error": raw.decode("utf-8", "replace").strip()}
    if status != 200:
        message = payload.get("error") if isinstance(payload, dict) \
            else None
        raise ServiceError(message or f"service returned HTTP {status}")
    if not isinstance(payload, dict):
        raise ServiceError(f"malformed service payload: {payload!r}")
    return payload


def submit_campaign(url: str, spec_dict: Dict[str, Any],
                    journal: Optional[str] = None) -> Dict[str, Any]:
    """POST a campaign spec; returns the acceptance summary."""
    body = json.dumps({"spec": spec_dict, "journal": journal}
                      if journal else spec_dict).encode("utf-8")
    status, raw = _request(url, "POST", "/campaign", body=body)
    return _json_or_error(status, raw)


def fetch_status(url: str) -> Dict[str, Any]:
    """GET the machine-readable campaign/service status."""
    status, raw = _request(url, "GET", "/status")
    return _json_or_error(status, raw)


def fetch_report(url: str, as_json: bool = False) -> Any:
    """GET the campaign report (text, or the dict form with ``as_json``)."""
    path = "/report?format=json" if as_json else "/report"
    status, raw = _request(url, "GET", path)
    if as_json:
        return _json_or_error(status, raw)
    if status != 200:
        _json_or_error(status, raw)  # raises with the server's message
    return raw.decode("utf-8")


def fetch_metrics(url: str) -> Dict[str, Any]:
    """GET the coordinator's telemetry snapshot."""
    status, raw = _request(url, "GET", "/metrics")
    return _json_or_error(status, raw)


def follow_status(url: str,
                  timeout_s: float = 3600.0) -> Iterator[Dict[str, Any]]:
    """Yield ``/status?follow=1`` events until the stream ends.

    The final event has ``event == "done"``; the generator closes the
    connection when the server does (the stream is framed by close).
    """
    host, port = parse_url(url)
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", "/status?follow=1")
        response = conn.getresponse()
        if response.status != 200:
            _json_or_error(response.status, response.read())
        while True:
            line = response.readline()
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if isinstance(event, dict):
                yield event
                if event.get("event") == "done":
                    return
    except OSError as exc:
        raise ServiceError(f"cannot reach campaign service at {url}: "
                           f"{exc}") from exc
    finally:
        conn.close()
