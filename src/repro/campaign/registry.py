"""Experiment registry and trial-runner dispatch for campaigns.

Two registries decouple the engine from the experiment modules:

* :data:`EXPERIMENTS` — name → :class:`ExperimentDef`, whose ``units``
  callable is the module's uniform ``trial_units()`` entry point
  returning ``(config key, trial)`` pairs in deterministic grid order;
* :data:`TRIAL_RUNNERS` — trial dataclass type → picklable runner, so a
  single campaign batch can mix :class:`InjectionTrial` sweeps and
  :class:`ScenarioTrial` worlds in one ``execute_trials`` call
  (:func:`run_unit_trial` dispatches per unit inside the worker).

Tests register synthetic experiments (e.g. an always-crashing trial) the
same way the built-ins register themselves; on Linux the fork start
method makes such registrations visible in pool workers.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Tuple, Type

from repro.errors import ConfigurationError

#: name → experiment definition (grid provider).
EXPERIMENTS: Dict[str, "ExperimentDef"] = {}

#: trial dataclass type → picklable ``trial -> TrialResult`` runner.
TRIAL_RUNNERS: Dict[type, Callable[[Any], Any]] = {}


@dataclass(frozen=True)
class ExperimentDef:
    """A campaign-runnable experiment.

    Attributes:
        name: registry key, used as the ``experiment`` field of axes.
        units: the grid provider — keyword arguments in, deterministic
            ``(config key, trial)`` pairs out.
        description: one-liner for ``repro campaign`` listings/errors.
    """

    name: str
    units: Callable[..., List[Tuple[Any, Any]]]
    description: str = ""


def register_experiment(defn: ExperimentDef, replace: bool = False) -> None:
    """Register an experiment definition under ``defn.name``."""
    if defn.name in EXPERIMENTS and not replace:
        raise ConfigurationError(
            f"experiment {defn.name!r} is already registered")
    EXPERIMENTS[defn.name] = defn


def get_experiment(name: str) -> ExperimentDef:
    """Look up a registered experiment or fail with the known names."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered: "
            f"{', '.join(sorted(EXPERIMENTS))}") from None


def register_trial_runner(trial_type: Type[Any],
                          runner: Callable[[Any], Any],
                          replace: bool = False) -> None:
    """Map a trial dataclass type to its picklable runner."""
    if trial_type in TRIAL_RUNNERS and not replace:
        raise ConfigurationError(
            f"trial runner for {trial_type.__name__} is already registered")
    TRIAL_RUNNERS[trial_type] = runner


def run_unit_trial(trial: Any) -> Any:
    """Run one campaign unit by dispatching on its trial type.

    Module-level and therefore picklable: this is the single ``runner``
    handed to :func:`repro.runner.execute_trials` for a whole campaign
    batch, however many experiment kinds the batch mixes.
    """
    for cls in type(trial).__mro__:
        runner = TRIAL_RUNNERS.get(cls)
        if runner is not None:
            return runner(trial)
    raise ConfigurationError(
        f"no trial runner registered for {type(trial).__name__} "
        f"(see repro.campaign.register_trial_runner)")


def expand_axis(
    defn: ExperimentDef,
    params: Mapping[str, Any],
    default_seed: Any = None,
    default_connections: Any = None,
    collect_metrics: bool = False,
) -> List[Tuple[Any, Any]]:
    """Call an experiment's grid provider with campaign-level defaults.

    Campaign-wide ``seed`` / ``connections`` / ``collect_metrics`` fill
    the provider's ``base_seed`` / ``n_connections`` /
    ``collect_metrics`` parameters when the provider accepts them and
    the axis params do not override them; a bad axis raises
    :class:`~repro.errors.ConfigurationError` naming the experiment.
    """
    signature = inspect.signature(defn.units)
    kwargs = dict(params)
    if default_seed is not None and "base_seed" in signature.parameters:
        kwargs.setdefault("base_seed", default_seed)
    if default_connections is not None \
            and "n_connections" in signature.parameters:
        kwargs.setdefault("n_connections", default_connections)
    if collect_metrics and "collect_metrics" in signature.parameters:
        kwargs.setdefault("collect_metrics", True)
    try:
        signature.bind(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"axis {defn.name!r}: {exc} "
            f"(provider signature: {defn.name}{signature})") from None
    try:
        return list(defn.units(**kwargs))
    except (KeyError, ValueError, TypeError) as exc:
        raise ConfigurationError(f"axis {defn.name!r}: {exc}") from exc


def _register_builtins() -> None:
    """Register the built-in experiment modules and their trial runners."""
    from repro.experiments import (
        ablations,
        defense,
        dense,
        distance,
        hop_interval,
        payload_size,
        scenarios,
        wall,
    )
    from repro.experiments.common import InjectionTrial, run_single_trial

    register_experiment(ExperimentDef(
        "hop", hop_interval.trial_units,
        "Fig. 9 hop-interval sensitivity sweep"))
    register_experiment(ExperimentDef(
        "payload", payload_size.trial_units,
        "Fig. 9 payload-size sensitivity sweep"))
    register_experiment(ExperimentDef(
        "distance", distance.trial_units,
        "Fig. 9 attacker-distance sweep"))
    register_experiment(ExperimentDef(
        "wall", wall.trial_units,
        "behind-a-wall attenuation sweep"))
    register_experiment(ExperimentDef(
        "widening", ablations.trial_units,
        "ABL-1 widening-reduction countermeasure ablation"))
    register_experiment(ExperimentDef(
        "encryption", ablations.encryption_trial_units,
        "ABL-2 injection against encrypted connections"))
    register_experiment(ExperimentDef(
        "scenario", scenarios.trial_units,
        "§VI end-to-end attack scenarios × devices"))
    register_experiment(ExperimentDef(
        "occupancy", dense.trial_units,
        "injection success vs. ambient occupancy in dense-RF worlds"))
    register_experiment(ExperimentDef(
        "defense", defense.trial_units,
        "§VIII detector bench: every detector vs. attack and benign "
        "traffic"))

    register_trial_runner(InjectionTrial, run_single_trial)
    register_trial_runner(scenarios.ScenarioTrial,
                          scenarios.run_scenario_trial)
    register_trial_runner(dense.DenseTrial, dense.run_dense_trial)
    register_trial_runner(defense.DefenseTrial, defense.run_defense_trial)


_register_builtins()
