"""Declarative, fault-tolerant campaign orchestration.

A *campaign* scales the paper's §VII sensitivity analysis from one-shot
panels to sharded, resumable sweeps: a JSON :class:`CampaignSpec`
declares axes over the registered experiments, the engine expands them
into seed-deterministic :class:`~repro.campaign.engine.TrialUnit` lists,
executes them through the robust runner (per-trial timeout, bounded
retry with exponential backoff, worker-crash quarantine), and journals
every completed unit to an append-only ``campaign.jsonl`` so an
interrupted run resumes exactly where it stopped — with final reports
byte-identical to an uninterrupted run at any ``--jobs``/``--shard``
setting.

Layering: ``experiments/*.trial_units()`` grids → :mod:`.registry`
(name → provider, trial type → runner) → :mod:`.spec` (declarative
JSON) → :mod:`.engine` (expand/shard/execute/checkpoint) →
:mod:`.journal` (crash-tolerant JSONL) → :mod:`.report` (pure-function
rendering over journal records).  :mod:`.service` layers a
coordinator/worker split with a work-stealing lease queue and an HTTP
API on top, streaming results into the very same journal.
"""

from repro.campaign.engine import (
    CampaignState,
    TrialUnit,
    expand_units,
    load_state,
    open_journal,
    parse_shard,
    run_campaign,
    shard_units,
    unit_record,
    units_by_id,
)
from repro.campaign.journal import (
    JOURNAL_VERSION,
    UnitRecord,
    read_journal,
    record_from_payload,
)
from repro.campaign.registry import (
    EXPERIMENTS,
    ExperimentDef,
    get_experiment,
    register_experiment,
    register_trial_runner,
    run_unit_trial,
)
from repro.campaign.report import (
    build_report,
    render_status,
    report_dict,
    status_dict,
)
from repro.campaign.spec import SPEC_VERSION, AxisSpec, CampaignSpec

__all__ = [
    "AxisSpec",
    "CampaignSpec",
    "CampaignState",
    "EXPERIMENTS",
    "ExperimentDef",
    "JOURNAL_VERSION",
    "SPEC_VERSION",
    "TrialUnit",
    "UnitRecord",
    "build_report",
    "expand_units",
    "get_experiment",
    "load_state",
    "open_journal",
    "parse_shard",
    "read_journal",
    "record_from_payload",
    "register_experiment",
    "register_trial_runner",
    "render_status",
    "report_dict",
    "run_campaign",
    "run_unit_trial",
    "shard_units",
    "status_dict",
    "unit_record",
    "units_by_id",
]
