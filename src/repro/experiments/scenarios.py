"""Scenario end-to-end runners (paper §VI) for benchmarks and the CLI.

Each runner builds a fresh world (victim device + phone + attacker on the
2 m triangle), executes one scenario, and verifies the *offensive goal*
rather than just the injection: the feature fired, the impersonation
served spoofed data, the takeover drove the device, the relay mutated
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.attacker import Attacker
from repro.core.scenarios import (
    IllegitimateUseScenario,
    MasterHijackScenario,
    MitmScenario,
    SlaveHijackScenario,
)
from repro.core.scenarios.scenario_b import hacked_gatt_server
from repro.devices import Keyfob, Lightbulb, Smartphone, Smartwatch
from repro.devices.smartwatch import Sms
from repro.host.att.pdus import ReadByTypeRsp, WriteReq, decode_att_pdu
from repro.host.gatt.uuids import UUID_DEVICE_NAME
from repro.host.l2cap import CID_ATT, l2cap_decode, l2cap_encode
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology

#: Victim device classes by display name.
DEVICES = {
    "lightbulb": Lightbulb,
    "keyfob": Keyfob,
    "smartwatch": Smartwatch,
}


def build_world(device_cls, seed: int, world_hook: Optional[Callable] = None,
                engine: Optional[str] = None, trace_enabled: bool = False,
                metrics_enabled: bool = False):
    """Victim + phone + synchronised attacker, connection established.

    ``world_hook(sim, medium)``, if given, runs before any device exists —
    the spot to attach observers such as a
    :class:`~repro.telemetry.capture.FrameRecorder` or a
    :class:`~repro.defense.bank.DetectorBank` so they see the whole
    exchange from the first advertisement (and thus learn the CONNECT_REQ's
    CRCInit for CRC validation).

    ``engine`` selects the simulation engine (see
    :func:`repro.sim.fastforward.resolve_engine`); ``trace_enabled`` turns
    on full trace recording for differential comparisons;
    ``metrics_enabled`` runs the world instrumented (defense bench trials
    ship the snapshot back in their results).
    """
    from repro.sim.fastforward import install_engine

    sim = Simulator(seed=seed, trace_enabled=trace_enabled,
                    metrics_enabled=metrics_enabled)
    topo = Topology.equilateral_triangle(("victim", "phone", "attacker"))
    medium = Medium(sim, topo)
    if world_hook is not None:
        world_hook(sim, medium)
    victim = device_cls(sim, medium, "victim")
    victim.ll.readvertise_on_disconnect = False
    phone = Smartphone(sim, medium, "phone", interval=36)
    attacker = Attacker(sim, medium, "attacker")
    install_engine(sim, medium, phone.ll, victim.ll, engine=engine)
    attacker.sniff_new_connections()
    victim.power_on()
    phone.connect_to(victim.address)
    sim.run(until_us=1_200_000)
    assert attacker.synchronized
    return sim, victim, phone, attacker


def feature_write(victim):
    """(handle, value, check) triggering each device's §VI-A feature."""
    if isinstance(victim, Lightbulb):
        return (victim.gatt.find_characteristic(0xFF11).value_handle,
                Lightbulb.power_payload(False, pad_to=5),
                lambda: not victim.is_on)
    if isinstance(victim, Keyfob):
        return (victim.alert_char.value_handle, Keyfob.ring_payload(),
                lambda: victim.is_ringing)
    return (victim.sms_char.value_handle,
            Sms("Bank", "forged alert").to_bytes(),
            lambda: bool(victim.inbox))


def run_scenario_a(device_cls, seed: int,
                   world_hook: Optional[Callable] = None) -> tuple[bool, int]:
    """Scenario A: inject a feature-triggering ATT request."""
    sim, victim, phone, attacker = build_world(device_cls, seed, world_hook)
    handle, value, check = feature_write(victim)
    results = []
    IllegitimateUseScenario(attacker).inject_write(handle, value,
                                                   on_done=results.append)
    sim.run(until_us=60_000_000)
    ok = bool(results and results[0].success and check())
    return ok, results[0].report.attempts if results else 0


def run_scenario_b(device_cls, seed: int,
                   world_hook: Optional[Callable] = None) -> tuple[bool, int]:
    """Scenario B: terminate + impersonate; verify the spoofed name."""
    sim, victim, phone, attacker = build_world(device_cls, seed, world_hook)
    results = []
    SlaveHijackScenario(attacker, gatt_server=hacked_gatt_server("Hacked")
                        ).run(on_done=results.append)
    sim.run(until_us=15_000_000)
    if not (results and results[0].success):
        return False, results[0].report.attempts if results else 0
    names = []
    phone.host.att.read_by_type(UUID_DEVICE_NAME, names.append)
    sim.run(until_us=sim.now + 3_000_000)
    spoofed = bool(names and isinstance(names[0], ReadByTypeRsp)
                   and names[0].records[0][1] == b"Hacked")
    ok = spoofed and not victim.ll.is_connected and phone.is_connected
    return ok, results[0].report.attempts


def run_scenario_c(device_cls, seed: int,
                   world_hook: Optional[Callable] = None) -> tuple[bool, int]:
    """Scenario C: forged update takeover; verify the attacker drives."""
    sim, victim, phone, attacker = build_world(device_cls, seed, world_hook)
    results = []
    MasterHijackScenario(attacker, instant_delta=40).run(
        on_done=results.append)
    sim.run(until_us=25_000_000)
    if not (results and results[0].success):
        return False, results[0].report.attempts if results else 0
    handle, value, check = feature_write(victim)
    results[0].fake_master.queue_att(WriteReq(handle, value).to_bytes())
    sim.run(until_us=sim.now + 3_000_000)
    ok = check() and victim.ll.is_connected and not phone.is_connected
    return ok, results[0].report.attempts


def run_scenario_d(device_cls, seed: int,
                   world_hook: Optional[Callable] = None) -> tuple[bool, int]:
    """Scenario D: MitM; verify on-the-fly mutation of relayed writes."""
    sim, victim, phone, attacker = build_world(device_cls, seed, world_hook)

    def mutate(frame):
        try:
            cid, att = l2cap_decode(frame)
            pdu = decode_att_pdu(att)
            if isinstance(pdu, WriteReq):
                return l2cap_encode(CID_ATT, WriteReq(
                    pdu.handle, b"\xEE" + pdu.value[1:]).to_bytes())
        except Exception:
            pass
        return frame

    results = []
    MitmScenario(attacker, master_to_slave=mutate).run(
        on_done=results.append)
    sim.run(until_us=15_000_000)
    if not (results and results[0].success):
        return False, results[0].report.attempts if results else 0
    handle, value, _ = feature_write(victim)
    witness = []
    char = None
    for service in victim.gatt.services:
        for candidate in service.characteristics:
            if candidate.value_handle == handle:
                char = candidate
    assert char is not None
    char.on_write = witness.append
    phone.gatt.write(handle, value)
    sim.run(until_us=sim.now + 6_000_000)
    mutated = bool(witness and witness[-1][:1] == b"\xEE")
    ok = mutated and phone.is_connected and victim.ll.is_connected
    return ok, results[0].report.attempts


#: Scenario runners by display name.
SCENARIOS: dict[str, Callable] = {
    "A (use feature)": run_scenario_a,
    "B (slave hijack)": run_scenario_b,
    "C (master hijack)": run_scenario_c,
    "D (MitM)": run_scenario_d,
}


#: Single-letter shortcuts ("A".."D") to the display names in SCENARIOS.
SCENARIO_LETTERS: dict[str, str] = {
    display.split()[0]: display for display in SCENARIOS
}


def resolve_scenario(name: str) -> str:
    """Resolve a display name or single-letter shortcut to a SCENARIOS key."""
    if name in SCENARIOS:
        return name
    key = name.strip().upper()
    if key in SCENARIO_LETTERS:
        return SCENARIO_LETTERS[key]
    raise KeyError(
        f"unknown scenario {name!r}; expected one of "
        f"{sorted(SCENARIO_LETTERS)} or {list(SCENARIOS)}"
    )


@dataclass(frozen=True)
class ScenarioTrial:
    """One end-to-end scenario world, as a campaign-runnable unit.

    Attributes:
        seed: world seed.
        scenario: display name in :data:`SCENARIOS`.
        device: device name in :data:`DEVICES`.
    """

    seed: int
    scenario: str
    device: str


def run_scenario_trial(trial: ScenarioTrial):
    """Run one scenario world; picklable campaign runner for the suite."""
    from repro.experiments.common import TrialResult

    ok, attempts = SCENARIOS[trial.scenario](DEVICES[trial.device],
                                             trial.seed)
    return TrialResult(success=ok, attempts=attempts, effect_observed=ok)


def trial_units(
    base_seed: int = 1000,
    n_connections: int = 1,
    scenarios: Optional[tuple[str, ...]] = None,
    devices: Optional[tuple[str, ...]] = None,
) -> list[tuple[str, ScenarioTrial]]:
    """Expand the suite into ``("<scenario> vs <device>", trial)`` units.

    Seeds follow the historical serial enumeration over the *full* grid
    (``base_seed + 13`` per case, scenario-major) so a filtered subset
    reproduces exactly the cases it keeps; repetitions beyond the first
    offset the case seed by ``rep * 104_729``.
    """
    wanted_scenarios = (None if scenarios is None
                        else {resolve_scenario(s) for s in scenarios})
    wanted_devices = None if devices is None else set(devices)
    if wanted_devices is not None:
        for name in wanted_devices:
            if name not in DEVICES:
                raise KeyError(f"unknown device {name!r}; expected one of "
                               f"{list(DEVICES)}")
    units: list[tuple[str, ScenarioTrial]] = []
    seed = base_seed
    for scenario_name in SCENARIOS:
        for device_name in DEVICES:
            seed += 13
            if wanted_scenarios is not None and \
                    scenario_name not in wanted_scenarios:
                continue
            if wanted_devices is not None and \
                    device_name not in wanted_devices:
                continue
            for rep in range(n_connections):
                units.append((
                    f"{scenario_name} vs {device_name}",
                    ScenarioTrial(seed=seed + rep * 104_729,
                                  scenario=scenario_name,
                                  device=device_name),
                ))
    return units


def run_scenario_suite(
    base_seed: int = 1000,
    jobs: Optional[int] = None,
) -> list[tuple[str, bool, int]]:
    """Every scenario × every device, each in its own fresh world.

    Seeds follow the historical serial enumeration (``base_seed + 13`` per
    case, scenario-major), so results match the pre-parallel benchmark
    byte for byte regardless of ``jobs``.
    """
    from repro.runner import parallel_map

    units = trial_units(base_seed=base_seed)
    results = parallel_map(run_scenario_trial,
                           [trial for _, trial in units], jobs=jobs)
    return [(label, result.success, result.attempts)
            for (label, _), result in zip(units, results)]
