"""Defense bench: every detector against every traffic kind (§VIII).

The paper argues for a passive IDS but never measures one.  This bench
does: a :class:`~repro.defense.bank.DetectorBank` taps each world and
every registered detector scores the same traffic, which comes in six
kinds —

* ``benign`` — the standard victim + phone world with a *passive*
  sniffing attacker and a periodic GATT polling workload (the
  false-positive floor every detector must clear);
* ``dense-ambient`` — the same victim link formed inside a stadium
  world with background connections and Wi-Fi bursts (the false-positive
  load under RF churn); no attacker at all;
* ``A``/``B``/``C``/``D`` — the four §VI attack scenarios launched
  against the monitored world (the positive class).

Attack trials are the ROC positives, benign and dense-ambient trials the
negatives; :func:`summarize_defense` folds the per-trial max scores into
per-detector AUC / TPR / FPR plus first-alert latency quantiles (see
:mod:`repro.analysis.roc`).  Detection latency is measured from the
instant the attack primitive is kicked off, not from its success.

Every trial result is a pure function of its :class:`DefenseTrial`; the
verdict-stream SHA-256 digests inside
:attr:`~repro.experiments.common.TrialResult.detection` are compared
bit-for-bit across engines and worker counts by the differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.experiments.common import TrialResult, run_trial_units

#: Canonical traffic kinds, grid order (negatives first).
TRAFFIC_KINDS = ("benign", "dense-ambient", "A", "B", "C", "D")

#: The positive-class subset of :data:`TRAFFIC_KINDS`.
ATTACK_TRAFFICS = ("A", "B", "C", "D")

#: Attack budget per scenario (simulated µs) — the §VI runner deadlines.
ATTACK_DEADLINE_US = {
    "A": 60_000_000.0,
    "B": 15_000_000.0,
    "C": 25_000_000.0,
    "D": 15_000_000.0,
}

#: Chunk size when running the attack phase; the loop stops at the first
#: chunk boundary after the scenario reports, instead of burning the
#: whole deadline.  Boundaries are fixed multiples past the (fixed)
#: attack start, so chunking never perturbs determinism.
ATTACK_CHUNK_US = 5_000_000.0

#: Phone-side GATT polling workload: period and default request count.
#: The polls give the response-time detector request/response pairs to
#: judge in *every* traffic kind — benign worlds answer in-event, a
#: scenario-D relay adds at least two connection intervals per hop.
POLL_PERIOD_US = 400_000.0
POLL_COUNT = 6

#: Settling time after the last poll before verdicts are folded.
POLL_SETTLE_US = 1_000_000.0

#: Background population of the ``dense-ambient`` world (stadium layout:
#: everyone in everyone's radio range — the worst false-positive case).
AMBIENT_PAIRS = 4
AMBIENT_WIFI = 1

#: Victim-connection settling time (matches the §VI world builder's).
ESTABLISH_US = 1_200_000.0


@dataclass(frozen=True)
class DefenseTrial:
    """Configuration of one monitored-world trial.

    Attributes:
        seed: trial seed.
        traffic: canonical traffic kind, one of :data:`TRAFFIC_KINDS`.
        device: victim device name in
            :data:`repro.experiments.scenarios.DEVICES`.
        detectors: detector registry names to load into the bank; empty
            loads every registered detector.
        polls: phone-side GATT reads issued after the attack phase.
        collect_metrics: run the world instrumented and ship the
            snapshot back in :attr:`TrialResult.metrics`.
    """

    seed: int
    traffic: str
    device: str = "lightbulb"
    detectors: Tuple[str, ...] = ()
    polls: int = POLL_COUNT
    collect_metrics: bool = False


def resolve_traffic(name: str) -> str:
    """Resolve a traffic label to its canonical :data:`TRAFFIC_KINDS` key.

    Accepts canonical kinds, scenario letters in either case, scenario
    display names (``"A (use feature)"``) and the aliases ``clean`` /
    ``dense`` / ``ambient``.
    """
    key = name.strip()
    if key in TRAFFIC_KINDS:
        return key
    lowered = key.lower()
    if lowered in ("benign", "clean"):
        return "benign"
    if lowered in ("dense-ambient", "dense", "ambient"):
        return "dense-ambient"
    letter = key.split()[0].upper()
    if letter in ATTACK_TRAFFICS:
        return letter
    raise KeyError(
        f"unknown traffic kind {name!r}; expected one of {TRAFFIC_KINDS}"
    )


def traffic_label(traffic: str) -> str:
    """Human-readable label for a canonical traffic kind."""
    from repro.experiments.scenarios import SCENARIO_LETTERS

    return SCENARIO_LETTERS.get(traffic, traffic)


def run_defense_trial(trial: DefenseTrial) -> TrialResult:
    """Run one monitored world (the campaign runner for ``DefenseTrial``)."""
    result, _sim = run_defense_trial_world(trial)
    return result


def _build_ambient_world(trial: DefenseTrial, engine: Optional[str],
                         trace_enabled: bool):
    """The ``dense-ambient`` world: victim link amid stadium RF churn."""
    from repro.devices import Smartphone
    from repro.experiments.common import TRACE_RING_RECORDS
    from repro.experiments.dense import (
        ESTABLISH_SETTLE_US,
        ESTABLISH_STAGGER_US,
        EXPERIMENT_HOP_INTERVAL,
        build_dense_topology,
        populate_background,
    )
    from repro.experiments.scenarios import DEVICES
    from repro.defense import DetectorBank
    from repro.sim.fastforward import install_engine
    from repro.sim.medium import Medium
    from repro.sim.simulator import Simulator

    sim = Simulator(seed=trial.seed, trace_enabled=trace_enabled,
                    trace_max_records=None if trace_enabled
                    else TRACE_RING_RECORDS,
                    metrics_enabled=trial.collect_metrics)
    topo, pairs, wifi_names = build_dense_topology(
        "stadium", AMBIENT_PAIRS, AMBIENT_WIFI)
    medium = Medium(sim, topo)
    bank = DetectorBank(sim, medium, detectors=trial.detectors)
    populate_background(sim, medium, pairs, wifi_names)
    sim.run(until_us=ESTABLISH_SETTLE_US
            + ESTABLISH_STAGGER_US * AMBIENT_PAIRS)
    victim = DEVICES[trial.device](sim, medium, "peripheral")
    victim.ll.readvertise_on_disconnect = False
    phone = Smartphone(sim, medium, "central",
                       interval=EXPERIMENT_HOP_INTERVAL)
    install_engine(sim, medium, phone.ll, victim.ll, engine=engine)
    victim.power_on()
    phone.connect_to(victim.address)
    sim.run(until_us=sim.now + ESTABLISH_US)
    return sim, phone, bank


def _launch_attack(trial: DefenseTrial, sim, victim, attacker,
                   results: list) -> None:
    """Kick off the §VI attack primitive for the trial's traffic kind."""
    from repro.core.scenarios import (
        IllegitimateUseScenario,
        MasterHijackScenario,
        MitmScenario,
        SlaveHijackScenario,
    )
    from repro.core.scenarios.scenario_b import hacked_gatt_server
    from repro.experiments.scenarios import feature_write

    if trial.traffic == "A":
        handle, value, _check = feature_write(victim)
        IllegitimateUseScenario(attacker).inject_write(
            handle, value, on_done=results.append)
    elif trial.traffic == "B":
        SlaveHijackScenario(attacker, gatt_server=hacked_gatt_server(
            "Hacked")).run(on_done=results.append)
    elif trial.traffic == "C":
        MasterHijackScenario(attacker, instant_delta=40).run(
            on_done=results.append)
    else:  # "D": a pure relay — timing distortion is the whole signal
        MitmScenario(attacker).run(on_done=results.append)


def run_defense_trial_world(
    trial: DefenseTrial,
    engine: Optional[str] = None,
    trace_enabled: bool = False,
) -> tuple[TrialResult, "object"]:
    """:func:`run_defense_trial`, returning the simulator too.

    For attack traffic ``success`` is the attack's own outcome; for the
    negative kinds it records that the monitored connection survived the
    polling workload.  ``effect_observed`` records whether *any*
    detector alerted (score >= alert threshold); the full scored picture
    lives in ``result.detection["detectors"]``.
    """
    from repro.defense import DetectorBank
    from repro.experiments.scenarios import DEVICES, build_world
    from repro.host.gatt.uuids import UUID_DEVICE_NAME

    is_attack = trial.traffic in ATTACK_DEADLINE_US
    attack_start: Optional[float] = None
    attack_success = False
    attempts = 0
    if trial.traffic == "dense-ambient":
        sim, phone, bank = _build_ambient_world(trial, engine, trace_enabled)
    else:
        banks: list = []

        def hook(sim, medium):
            banks.append(DetectorBank(sim, medium,
                                      detectors=trial.detectors))

        sim, victim, phone, attacker = build_world(
            DEVICES[trial.device], trial.seed, world_hook=hook,
            engine=engine, trace_enabled=trace_enabled,
            metrics_enabled=trial.collect_metrics)
        bank = banks[0]
        if is_attack:
            attack_start = sim.now
            results: list = []
            _launch_attack(trial, sim, victim, attacker, results)
            deadline = sim.now + ATTACK_DEADLINE_US[trial.traffic]
            while not results and sim.now < deadline:
                sim.run(until_us=min(sim.now + ATTACK_CHUNK_US, deadline))
            attack_success = bool(results and results[0].success)
            attempts = results[0].report.attempts if results else 0

    # Phone-side polling workload: request/response pairs for the
    # response-time detector, issued only while the phone believes it is
    # connected (hijacks legitimately take the phone down).
    responses: list = []

    def poll() -> None:
        if phone.is_connected:
            phone.host.att.read_by_type(UUID_DEVICE_NAME, responses.append)

    poll_base = sim.now
    for i in range(trial.polls):
        sim.schedule_at(poll_base + POLL_PERIOD_US * (i + 1), poll,
                        "defense-poll")
    sim.run(until_us=poll_base + POLL_PERIOD_US * (trial.polls + 1)
            + POLL_SETTLE_US)

    summaries = bank.summaries(attack_start_us=attack_start)
    detected = any(s["alerts"] for s in summaries.values())
    detection = {
        "traffic": trial.traffic,
        "attack": is_attack,
        "attack_start_us": attack_start,
        "attack_success": attack_success,
        "polls_answered": len(responses),
        "detectors": summaries,
    }
    return TrialResult(
        success=attack_success if is_attack else phone.is_connected,
        attempts=attempts,
        effect_observed=detected,
        connection_survived=phone.is_connected,
        metrics=sim.metrics.snapshot() if trial.collect_metrics else None,
        detection=detection,
    ), sim


def trial_units(
    base_seed: int = 17,
    n_connections: int = 3,
    traffics: Optional[Sequence[str]] = None,
    device: str = "lightbulb",
    detectors: Sequence[str] = (),
    polls: int = POLL_COUNT,
    collect_metrics: bool = False,
) -> list[tuple[str, DefenseTrial]]:
    """Expand the bench into ``(traffic label, trial)`` units.

    Seed derivation follows the sweep-module convention: traffic kind
    ``k`` (full-grid position, so filtered subsets reproduce exactly the
    cases they keep) gets config seed ``base_seed + k*131``; trial ``i``
    gets ``config_seed*10_000 + i``.
    """
    wanted = (None if traffics is None
              else {resolve_traffic(t) for t in traffics})
    units: list[tuple[str, DefenseTrial]] = []
    for index, traffic in enumerate(TRAFFIC_KINDS):
        if wanted is not None and traffic not in wanted:
            continue
        config_seed = base_seed + index * 131
        label = traffic_label(traffic)
        for i in range(n_connections):
            units.append((label, DefenseTrial(
                seed=config_seed * 10_000 + i,
                traffic=traffic,
                device=device,
                detectors=tuple(detectors),
                polls=polls,
                collect_metrics=collect_metrics,
            )))
    return units


def run_experiment_defense(
    base_seed: int = 17,
    n_connections: int = 3,
    traffics: Optional[Sequence[str]] = None,
    device: str = "lightbulb",
    detectors: Sequence[str] = (),
    jobs: Optional[int] = None,
    cache=None,
    collect_metrics: bool = False,
) -> Mapping[str, List[TrialResult]]:
    """Run the defense bench; returns results per traffic label."""
    return run_trial_units(
        trial_units(base_seed, n_connections, traffics, device,
                    detectors, collect_metrics=collect_metrics),
        jobs=jobs, cache=cache,
    )


def _max_scores(trials: Sequence[TrialResult], detector: str) -> List[float]:
    out = []
    for t in trials:
        summary = (t.detection or {}).get("detectors", {}).get(detector)
        if summary is not None:
            out.append(summary["max_score"])
    return out


def detector_order(results: Mapping[str, List[TrialResult]]) -> List[str]:
    """Detector names in bank order, from the first completed trial."""
    for trials in results.values():
        for t in trials:
            if t.detection:
                return list(t.detection["detectors"])
    return []


def summarize_defense(
    results: Mapping[str, List[TrialResult]],
) -> list[dict]:
    """Fold bench results into per-(detector, attack traffic) ROC rows.

    Negatives are pooled over every non-attack label, so each detector
    has one FPR and one negative-score pool shared by all its rows.
    Rows carry: ``detector``, ``traffic``, ``n_pos``/``n_neg``, ``auc``,
    ``tpr``/``fpr`` (at the alert threshold), ``detected`` (trials with
    at least one alert) and first-alert latency quantiles (µs).
    """
    from repro.analysis.roc import (
        auc,
        false_positive_rate,
        quantile,
        true_positive_rate,
    )

    names = detector_order(results)
    attack_labels = [
        label for label, trials in results.items()
        if any(t.detection and t.detection["attack"] for t in trials)
    ]
    benign_labels = [label for label in results
                     if label not in attack_labels]
    rows: list[dict] = []
    for name in names:
        negatives = [s for label in benign_labels
                     for s in _max_scores(results[label], name)]
        fpr = false_positive_rate(negatives)
        for label in attack_labels:
            positives = _max_scores(results[label], name)
            latencies = [
                t.detection["detectors"][name]["latency_us"]
                for t in results[label]
                if t.detection
                and t.detection["detectors"].get(name, {}).get("latency_us")
                is not None
            ]
            rows.append({
                "detector": name,
                "traffic": label,
                "n_pos": len(positives),
                "n_neg": len(negatives),
                "auc": auc(positives, negatives),
                "tpr": true_positive_rate(positives),
                "fpr": fpr,
                "detected": len(latencies),
                "latency_p50_us": quantile(latencies, 0.5),
                "latency_p90_us": quantile(latencies, 0.9),
            })
    return rows
