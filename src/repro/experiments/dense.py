"""Dense-RF worlds: injection success vs. ambient channel occupancy.

The paper ran its experiments "in a realistic environment, including
several other BLE devices and multiple WiFi routers" (§VII-A), but real
hardware cannot *sweep* that environment.  The indexed medium can: this
module builds worlds with K concurrent background Central↔Peripheral
connections plus Wi-Fi-style interferers (``repro.sim.interference``) and
one attacker, measures the ambient occupancy the victim link actually
experiences, then runs the standard injection attack through it.

Two generators ship:

* ``apartment`` — a row-building of 6 m rooms separated by 8 dB walls;
  the victims and attacker share room 0, each background pair gets its
  own room, Wi-Fi sources are scattered through the rest;
* ``stadium`` — free space; victims centre stage, background pairs on a
  20 m ring, Wi-Fi on a 10 m ring (everyone in everyone's radio range —
  the worst case the interest-set medium is built for).

The *occupancy sweep* (`repro experiment occupancy`, campaign name
``occupancy``) scales the background load per :data:`OCCUPANCY_LOAD_LEVELS`
and reports, per level, the measured ambient occupancy next to the
injection outcome distribution.  Unlike the 3-device panels a dense trial
is *expected* to fail sometimes at high load — the sweep's product is the
success-vs-occupancy curve, not a 100% floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import ConfigurationError
from repro.experiments.common import (
    TRACE_RING_RECORDS,
    TrialResult,
    attempts_of,
    build_injection_payload,
    run_trial_units,
    success_rate,
)
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology

#: Load-level label → (background connections, Wi-Fi interferers).
OCCUPANCY_LOAD_LEVELS: dict[str, tuple[int, int]] = {
    "idle (0 bg)": (0, 0),
    "sparse (4 bg + 1 wifi)": (4, 1),
    "busy (10 bg + 2 wifi)": (10, 2),
    "dense (16 bg + 3 wifi)": (16, 3),
}

#: Supported world generators.
LAYOUTS = ("apartment", "stadium")

#: Edge of one apartment room, metres.
ROOM_M = 6.0

#: Rooms per building row (room k sits at column k % 4, row k // 4).
ROOMS_PER_ROW = 4

#: Wall attenuation between rooms (typical interior wall at 2.4 GHz).
ROOM_WALL_DB = 8.0

#: Background connection hop intervals, cycled per pair (1.25 ms units) —
#: deliberately co-prime-ish so the ambient traffic does not beat.
BG_INTERVALS = (24, 36, 48)

#: Delay between consecutive background ``connect()`` kicks.  Staggering
#: keeps CONNECT_REQs from piling onto one advertising event, and all
#: background establishment finishes before the attacker starts sniffing
#: (so it cannot sync onto the wrong CONNECT_REQ).
ESTABLISH_STAGGER_US = 30_000.0

#: Settling time after the last background connect before occupancy is
#: measured.
ESTABLISH_SETTLE_US = 1_000_000.0

#: Ambient-occupancy measurement window (victims not yet in the world).
OCCUPANCY_WINDOW_US = 1_000_000.0

#: Victim connection + attacker-sync settling time.
VICTIM_SETTLE_US = 2_000_000.0

#: Injection budget per dense trial.  Dense worlds cannot fast-forward
#: (the background traffic keeps the event queue hot), so the budget is
#: far below the 3-device panels' 120 s; the attack either lands within
#: a few hundred connection events or the trial counts as a failure —
#: which, at high occupancy, is the signal being measured.
DENSE_INJECT_DEADLINE_US = 20_000_000.0

#: Post-attack settling time before the effect/survival checks.
EFFECT_SETTLE_US = 2_000_000.0

#: The BLE band (37 data + 3 advertising channels); occupancy denominators.
TOTAL_CHANNELS = 40

#: The smartphone-default victim hop interval, as in experiments 1-3.
EXPERIMENT_HOP_INTERVAL = 36

#: 22-byte over-the-air Write Request, as in experiments 1 and 3.
EXPERIMENT_PDU_LEN = 14


@dataclass(frozen=True)
class DenseTrial:
    """Configuration of one dense-world injection trial.

    Attributes:
        seed: trial seed.
        connections: background Central↔Peripheral pairs sharing the band.
        wifi_interferers: Wi-Fi-style burst sources.
        layout: world generator, one of :data:`LAYOUTS`.
        hop_interval: the *victim* connection's hop interval.
        pdu_len: injected PDU length (see
            :func:`~repro.experiments.common.build_injection_payload`).
        wifi_duty_cycle: per-interferer transmit duty cycle.
        collect_metrics: ship the world's metrics snapshot back in
            :attr:`~repro.experiments.common.TrialResult.metrics`.
    """

    seed: int
    connections: int = 12
    wifi_interferers: int = 1
    layout: str = "apartment"
    hop_interval: int = EXPERIMENT_HOP_INTERVAL
    pdu_len: int = EXPERIMENT_PDU_LEN
    wifi_duty_cycle: float = 0.10
    collect_metrics: bool = False


class _AirtimeMeter:
    """A wideband tap summing on-air microseconds (occupancy numerator)."""

    __slots__ = ("us",)

    def __init__(self):
        self.us = 0.0

    def __call__(self, frame) -> None:
        self.us += frame.duration_us


def _room_origin(room: int) -> tuple[float, float]:
    return (ROOM_M * (room % ROOMS_PER_ROW),
            ROOM_M * (room // ROOMS_PER_ROW))


def build_dense_topology(
    layout: str, n_pairs: int, n_wifi: int,
) -> tuple[Topology, list[tuple[str, str]], list[str]]:
    """Build a dense world's geometry.

    Returns ``(topology, [(master name, slave name), ...], wifi names)``;
    victim names are always ``peripheral``/``central``/``attacker``.
    """
    if layout not in LAYOUTS:
        raise ConfigurationError(
            f"unknown dense layout {layout!r}; expected one of {LAYOUTS}")
    if n_pairs < 0 or n_wifi < 0:
        raise ConfigurationError(
            f"negative world population: {n_pairs} pairs, {n_wifi} wifi")
    topo = Topology()
    pairs = [(f"bgm{i:02d}", f"bgs{i:02d}") for i in range(n_pairs)]
    wifi_names = [f"wifi{j:02d}" for j in range(n_wifi)]
    if layout == "apartment":
        # Victims and attacker share room 0; pair i lives in room i + 1.
        topo.place("peripheral", 3.0, 3.0)
        topo.place("central", 5.0, 3.0)
        topo.place("attacker", 1.0, 3.0)
        n_rooms = 1 + n_pairs
        for i, (m_name, s_name) in enumerate(pairs):
            ox, oy = _room_origin(i + 1)
            topo.place(m_name, ox + 1.5, oy + 1.5 + 0.7 * (i % 3))
            topo.place(s_name, ox + 4.5, oy + 4.5 - 0.5 * (i % 3))
        for j, name in enumerate(wifi_names):
            ox, oy = _room_origin((3 * j + 1) % n_rooms if n_rooms > 1 else 0)
            topo.place(name, ox + 1.0, oy + 5.0)
        # Full-height vertical and full-width horizontal walls between
        # neighbouring rooms.
        cols = min(ROOMS_PER_ROW, n_rooms)
        rows = (n_rooms + ROOMS_PER_ROW - 1) // ROOMS_PER_ROW
        for c in range(1, cols):
            topo.add_wall(ROOM_M * c, 0.0, ROOM_M * c, ROOM_M * rows,
                          attenuation_db=ROOM_WALL_DB)
        for r in range(1, rows):
            topo.add_wall(0.0, ROOM_M * r, ROOM_M * cols, ROOM_M * r,
                          attenuation_db=ROOM_WALL_DB)
    else:  # stadium: free space, everyone in range of everyone
        topo.place("peripheral", 0.0, 0.0)
        topo.place("central", 2.0, 0.0)
        topo.place("attacker", -2.0, 0.0)
        for i, (m_name, s_name) in enumerate(pairs):
            angle = 2.0 * math.pi * i / max(n_pairs, 1)
            topo.place(m_name, 20.0 * math.cos(angle), 20.0 * math.sin(angle))
            topo.place(s_name, 21.5 * math.cos(angle), 21.5 * math.sin(angle))
        for j, name in enumerate(wifi_names):
            angle = 2.0 * math.pi * (j + 0.5) / max(n_wifi, 1)
            topo.place(name, 10.0 * math.cos(angle), 10.0 * math.sin(angle))
    return topo, pairs, wifi_names


def populate_background(sim, medium, pairs, wifi_names,
                        wifi_duty_cycle: float = 0.10) -> list:
    """Create and start the ambient population of a dense world.

    Background slaves advertise, their masters connect on a staggered
    schedule, Wi-Fi interferers start bursting.  Shared by the occupancy
    sweep and the defense bench's dense-ambient worlds; the device
    creation order (and thus every RNG substream draw) is part of the
    determinism contract, so callers must pass ``pairs``/``wifi_names``
    exactly as :func:`build_dense_topology` returned them.

    Returns:
        the background :class:`~repro.ll.master.MasterLinkLayer`\\ s.
    """
    from repro.ll.master import MasterLinkLayer
    from repro.ll.pdu.address import BdAddress
    from repro.ll.slave import SlaveLinkLayer
    from repro.sim.interference import WifiInterferer

    bg_masters = []
    for i, (m_name, s_name) in enumerate(pairs):
        bg_slave = SlaveLinkLayer(
            sim, medium, s_name,
            BdAddress.generate(sim.streams.get(f"addr-{s_name}")),
            # Staggered advertising intervals: simultaneous ADV_INDs on the
            # same channel would otherwise collide every event.
            adv_interval_ms=40.0 + 7.0 * i,
        )
        bg_master = MasterLinkLayer(
            sim, medium, m_name,
            BdAddress.generate(sim.streams.get(f"addr-{m_name}")),
            interval=BG_INTERVALS[i % len(BG_INTERVALS)], timeout=300,
        )
        bg_slave.start_advertising()
        sim.schedule_at(
            ESTABLISH_STAGGER_US * (i + 1),
            lambda m=bg_master, s=bg_slave: m.connect(s.address),
            "dense-bg-connect")
        bg_masters.append(bg_master)
    for name in wifi_names:
        WifiInterferer(sim, medium, name,
                       duty_cycle=wifi_duty_cycle).start()
    return bg_masters


def run_dense_trial(trial: DenseTrial) -> TrialResult:
    """Run one dense-world trial (the campaign runner for ``DenseTrial``)."""
    result, _sim = run_dense_trial_world(trial)
    return result


def run_dense_trial_world(
    trial: DenseTrial,
    engine: Optional[str] = None,
    trace_enabled: bool = False,
) -> tuple[TrialResult, Simulator]:
    """:func:`run_dense_trial`, returning the simulator too.

    World timeline: background slaves advertise and their masters connect
    (staggered); Wi-Fi starts bursting; the world settles; ambient
    occupancy is measured over a quiet-victim window; then the victim
    connection forms under that load and the standard injection session
    runs against it.
    """
    from repro.core.attacker import Attacker
    from repro.core.injection import InjectionConfig, InjectionReport
    from repro.devices.lightbulb import Lightbulb
    from repro.ll.master import MasterLinkLayer
    from repro.ll.pdu.address import BdAddress
    from repro.sim.fastforward import install_engine
    from repro.sim.medium import Medium

    sim = Simulator(seed=trial.seed, trace_enabled=trace_enabled,
                    trace_max_records=None if trace_enabled
                    else TRACE_RING_RECORDS,
                    metrics_enabled=trial.collect_metrics)
    topo, pairs, wifi_names = build_dense_topology(
        trial.layout, trial.connections, trial.wifi_interferers)
    medium = Medium(sim, topo)
    meter = _AirtimeMeter()
    medium.add_tap(meter)

    bg_masters = populate_background(sim, medium, pairs, wifi_names,
                                     wifi_duty_cycle=trial.wifi_duty_cycle)

    establish_us = (ESTABLISH_SETTLE_US
                    + ESTABLISH_STAGGER_US * trial.connections)
    sim.run(until_us=establish_us)
    ambient_links = sum(1 for m in bg_masters if m.is_connected)
    airtime_before = meter.us
    sim.run(until_us=establish_us + OCCUPANCY_WINDOW_US)
    occupancy = (meter.us - airtime_before) \
        / (OCCUPANCY_WINDOW_US * TOTAL_CHANNELS)
    if sim.metrics.enabled:
        sim.metrics.gauge("dense.ambient_occupancy").set(occupancy)
        sim.metrics.gauge("dense.ambient_links").set(float(ambient_links))

    # The victim world forms only now, under the measured ambient load.
    bulb = Lightbulb(sim, medium, "peripheral")
    central = MasterLinkLayer(
        sim, medium, "central",
        BdAddress.from_str("C0:FF:EE:00:00:01"),
        interval=trial.hop_interval, timeout=300,
    )
    attacker = Attacker(sim, medium, "attacker",
                        injection_config=InjectionConfig(max_attempts=100))
    install_engine(sim, medium, central, bulb.ll, engine=engine)
    attacker.sniff_new_connections()
    bulb.power_on()
    central.connect(bulb.address)
    sim.run(until_us=sim.now + VICTIM_SETTLE_US)

    def snapshot() -> Optional[dict]:
        return sim.metrics.snapshot() if trial.collect_metrics else None

    if not attacker.synchronized:
        return TrialResult(success=False, attempts=0, metrics=snapshot(),
                           occupancy=occupancy), sim
    handle = bulb.gatt.find_characteristic(0xFF11).value_handle
    payload, llid = build_injection_payload(trial.pdu_len, handle)
    reports: list[InjectionReport] = []
    attacker.inject(payload, llid, on_done=reports.append)
    sim.run(until_us=sim.now + DENSE_INJECT_DEADLINE_US)
    if not reports:
        return TrialResult(success=False, attempts=0, metrics=snapshot(),
                           occupancy=occupancy), sim
    report = reports[0]
    sim.run(until_us=sim.now + EFFECT_SETTLE_US)
    effect = not bulb.is_on
    survived = central.is_connected and bulb.ll.is_connected
    return TrialResult(
        success=report.success,
        attempts=report.attempts,
        effect_observed=effect,
        connection_survived=survived,
        report=report,
        metrics=snapshot(),
        occupancy=occupancy,
    ), sim


def trial_units(
    base_seed: int = 9,
    n_connections: int = 10,
    levels: Optional[Mapping[str, tuple[int, int]]] = None,
    layout: str = "apartment",
    collect_metrics: bool = False,
) -> list[tuple[str, DenseTrial]]:
    """Expand the occupancy sweep into ``(level label, trial)`` units.

    Seed derivation follows the sweep-module convention
    (``base_seed + k*131`` per level, ``config_seed*10_000 + i`` per
    trial).
    """
    if levels is None:
        levels = OCCUPANCY_LOAD_LEVELS
    units = []
    for index, (label, (n_bg, n_wifi)) in enumerate(levels.items()):
        config_seed = base_seed + index * 131
        for i in range(n_connections):
            units.append((label, DenseTrial(
                seed=config_seed * 10_000 + i,
                connections=n_bg,
                wifi_interferers=n_wifi,
                layout=layout,
                collect_metrics=collect_metrics,
            )))
    return units


def run_experiment_occupancy(
    base_seed: int = 9,
    n_connections: int = 10,
    levels: Optional[Mapping[str, tuple[int, int]]] = None,
    layout: str = "apartment",
    jobs: Optional[int] = None,
    cache=None,
    collect_metrics: bool = False,
) -> Mapping[str, list[TrialResult]]:
    """Run the occupancy sweep; returns results per load-level label."""
    return run_trial_units(
        trial_units(base_seed, n_connections, levels, layout,
                    collect_metrics),
        jobs=jobs, cache=cache,
    )


def summarize_occupancy(
    results: Mapping[str, list[TrialResult]],
) -> list[tuple[str, str, str, str]]:
    """Per-level summary rows: occupancy, success rate, median attempts."""
    rows = []
    for label, trials in results.items():
        measured = [r.occupancy for r in trials if r.occupancy is not None]
        mean_occ = sum(measured) / len(measured) if measured else 0.0
        attempts = sorted(attempts_of(trials))
        median = str(attempts[len(attempts) // 2]) if attempts else "-"
        rows.append((
            label,
            f"occupancy {mean_occ:.4f}",
            f"success {success_rate(trials):.2f}",
            f"median attempts {median}",
        ))
    return rows
