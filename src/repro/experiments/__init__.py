"""The paper's sensitivity analysis (§VII) and countermeasure ablations."""

from repro.experiments.common import (
    InjectionTrial,
    TrialResult,
    run_trial_units,
    run_trials,
)
from repro.experiments.hop_interval import HOP_INTERVALS, run_experiment_hop_interval
from repro.experiments.payload_size import PAYLOAD_SIZES, run_experiment_payload_size
from repro.experiments.distance import DISTANCE_POSITIONS, run_experiment_distance
from repro.experiments.wall import WALL_DISTANCES, run_experiment_wall
from repro.experiments.dense import (
    OCCUPANCY_LOAD_LEVELS,
    DenseTrial,
    run_experiment_occupancy,
)
from repro.experiments.defense import (
    TRAFFIC_KINDS,
    DefenseTrial,
    run_experiment_defense,
    summarize_defense,
)

__all__ = [
    "DISTANCE_POSITIONS",
    "DefenseTrial",
    "DenseTrial",
    "HOP_INTERVALS",
    "InjectionTrial",
    "OCCUPANCY_LOAD_LEVELS",
    "PAYLOAD_SIZES",
    "TRAFFIC_KINDS",
    "TrialResult",
    "WALL_DISTANCES",
    "run_experiment_defense",
    "run_experiment_distance",
    "run_experiment_hop_interval",
    "run_experiment_occupancy",
    "run_experiment_payload_size",
    "run_experiment_wall",
    "run_trial_units",
    "run_trials",
]
