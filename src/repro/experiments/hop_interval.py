"""Experiment 1: impact of the Hop Interval (paper §VII-A, Fig. 9).

Six hop intervals from 25 to 150 slots, 25 connections each, injecting the
22-byte over-the-air Write Request (14-byte PDU) turning the lightbulb off,
in the 2 m equilateral-triangle setup.  Expected shape: every connection is
eventually injected, the median attempt count stays below ~4, and the
variance decreases sharply between 25 and 100 then stabilises.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.common import (
    CONNECTIONS_PER_CONFIG,
    InjectionTrial,
    TrialResult,
    run_trial_units,
)

#: The paper's tested hop intervals (1.25 ms slots).
HOP_INTERVALS: tuple[int, ...] = (25, 50, 75, 100, 125, 150)

#: PDU length of the experiment's injected frame (22 bytes over the air).
EXPERIMENT_PDU_LEN = 14


def trial_units(
    base_seed: int = 1,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    hop_intervals: tuple[int, ...] = HOP_INTERVALS,
    collect_metrics: bool = False,
) -> list[tuple[int, InjectionTrial]]:
    """Expand the sweep into ``(hop interval, trial)`` units, grid-major.

    Seeds follow the historical panel derivation — configuration ``k``
    seeds at ``base_seed + k*101``, trial ``i`` at ``config_seed*10_000
    + i`` — so campaign runs and one-shot panels share cache entries and
    produce identical results.
    """
    units = []
    for index, hop in enumerate(hop_intervals):
        config_seed = base_seed + index * 101
        for i in range(n_connections):
            units.append((hop, InjectionTrial(
                seed=config_seed * 10_000 + i, hop_interval=hop,
                pdu_len=EXPERIMENT_PDU_LEN, attacker_distance_m=2.0,
                collect_metrics=collect_metrics,
            )))
    return units


def run_experiment_hop_interval(
    base_seed: int = 1,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    hop_intervals: tuple[int, ...] = HOP_INTERVALS,
    jobs: Optional[int] = None,
    cache=None,
    collect_metrics: bool = False,
) -> Mapping[int, list[TrialResult]]:
    """Run the hop-interval sweep; returns results per interval."""
    return run_trial_units(
        trial_units(base_seed, n_connections, hop_intervals, collect_metrics),
        jobs=jobs, cache=cache,
    )
