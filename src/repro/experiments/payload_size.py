"""Experiment 2: impact of the payload size (paper §VII-B, Fig. 9).

Four injected-PDU sizes — 4, 9, 14 and 16 bytes — at a fixed hop interval
of 75, 25 connections each.  Each size maps to a frame with an observable
effect on the target (disconnect, power toggle, power off, colour change),
which lets the experiment cross-check the success heuristic against the
device state.  Expected shape: reliability increases (attempt counts and
spread decrease) as the payload shrinks; medians stay at or below ~3.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.common import (
    CONNECTIONS_PER_CONFIG,
    InjectionTrial,
    TrialResult,
    run_trial_units,
)

#: The paper's tested payload (PDU) sizes in bytes.
PAYLOAD_SIZES: tuple[int, ...] = (4, 9, 14, 16)

#: Fixed hop interval of experiment 2.
EXPERIMENT_HOP_INTERVAL = 75


def trial_units(
    base_seed: int = 2,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    payload_sizes: tuple[int, ...] = PAYLOAD_SIZES,
    collect_metrics: bool = False,
) -> list[tuple[int, InjectionTrial]]:
    """Expand the sweep into ``(PDU length, trial)`` units, grid-major.

    Seed derivation matches the historical panel (``base_seed + k*103``
    per configuration, ``config_seed*10_000 + i`` per trial).
    """
    units = []
    for index, size in enumerate(payload_sizes):
        config_seed = base_seed + index * 103
        for i in range(n_connections):
            units.append((size, InjectionTrial(
                seed=config_seed * 10_000 + i,
                hop_interval=EXPERIMENT_HOP_INTERVAL, pdu_len=size,
                attacker_distance_m=2.0, collect_metrics=collect_metrics,
            )))
    return units


def run_experiment_payload_size(
    base_seed: int = 2,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    payload_sizes: tuple[int, ...] = PAYLOAD_SIZES,
    jobs: Optional[int] = None,
    cache=None,
    collect_metrics: bool = False,
) -> Mapping[int, list[TrialResult]]:
    """Run the payload-size sweep; returns results per PDU length."""
    return run_trial_units(
        trial_units(base_seed, n_connections, payload_sizes, collect_metrics),
        jobs=jobs, cache=cache,
    )
