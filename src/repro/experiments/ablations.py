"""Countermeasure ablations (paper §VIII / §IV).

Three studies beyond the paper's Figure 9, quantifying the mitigations the
paper proposes qualitatively:

* **ABL-1** widening reduction: injection success rate vs the Slave's
  ``widening_scale``;
* **ABL-2** encryption: injection against a paired, AES-CCM-encrypted
  connection — never yields valid traffic, degrades to DoS;
* **ABL-3** IDS: detection rate of the double-frame/anchor signatures
  against successful injections, and of jamming against BTLEJack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.attacker import Attacker
from repro.core.injection import InjectionConfig, InjectionReport
from repro.defense.ids import LinkLayerIds
from repro.devices.lightbulb import Lightbulb
from repro.experiments.common import (
    InjectionTrial,
    TrialResult,
    build_injection_payload,
    run_trial_units,
)
from repro.host.stack import CentralHost
from repro.ll.master import MasterLinkLayer
from repro.ll.pdu.address import BdAddress
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology

#: Widening scales swept by ABL-1 (1.0 = spec behaviour).
WIDENING_SCALES: tuple[float, ...] = (1.0, 0.75, 0.5, 0.25, 0.1)


def trial_units(
    base_seed: int = 5,
    n_connections: int = 15,
    scales: tuple[float, ...] = WIDENING_SCALES,
    collect_metrics: bool = False,
) -> list[tuple[float, InjectionTrial]]:
    """Expand ABL-1 into ``(widening scale, trial)`` units, grid-major.

    Seed derivation matches the historical panel (``base_seed + k*113``
    per scale, ``config_seed*10_000 + i`` per trial).
    """
    units = []
    for index, scale in enumerate(scales):
        config_seed = base_seed + index * 113
        for i in range(n_connections):
            units.append((scale, InjectionTrial(
                seed=config_seed * 10_000 + i, hop_interval=75, pdu_len=14,
                widening_scale=scale, collect_metrics=collect_metrics,
            )))
    return units


def run_widening_ablation(
    base_seed: int = 5,
    n_connections: int = 15,
    scales: tuple[float, ...] = WIDENING_SCALES,
    jobs: Optional[int] = None,
    cache=None,
    collect_metrics: bool = False,
) -> Mapping[float, list[TrialResult]]:
    """ABL-1: sweep the Slave's widening reduction."""
    return run_trial_units(
        trial_units(base_seed, n_connections, scales, collect_metrics),
        jobs=jobs, cache=cache,
    )


def encryption_trial_units(
    base_seed: int = 6,
    n_connections: int = 15,
    collect_metrics: bool = False,
) -> list[tuple[str, InjectionTrial]]:
    """Expand ABL-2 into ``("encrypted", trial)`` units (one config)."""
    return [
        ("encrypted", InjectionTrial(
            seed=base_seed * 10_000 + i, hop_interval=75, pdu_len=14,
            encrypted=True, collect_metrics=collect_metrics,
        ))
        for i in range(n_connections)
    ]


@dataclass
class EncryptionAblationResult:
    """ABL-2 outcome for one connection.

    Attributes:
        injection_succeeded: the forged plaintext was ever accepted (must
            stay False with encryption on).
        dos_observed: the Slave dropped the connection (MIC failure) —
            the residual availability impact the paper predicts.
    """

    injection_succeeded: bool
    dos_observed: bool


def run_encryption_ablation(base_seed: int = 6, n_connections: int = 15,
                            jobs: Optional[int] = None, cache=None,
                            collect_metrics: bool = False,
                            ) -> list[EncryptionAblationResult]:
    """ABL-2: inject into encrypted connections."""
    from repro.runner import execute_trials

    trials = [trial for _, trial in encryption_trial_units(
        base_seed, n_connections, collect_metrics)]
    return [
        EncryptionAblationResult(
            injection_succeeded=outcome.effect_observed,
            dos_observed=not outcome.connection_survived,
        )
        for outcome in execute_trials(trials, jobs=jobs, cache=cache)
    ]


@dataclass
class IdsAblationResult:
    """ABL-3 outcome for one attack run.

    Attributes:
        attack: ``"injectable"`` or ``"btlejack"``.
        attack_succeeded: the offensive goal was reached.
        detected: the IDS raised the matching signature.
        attacker_frames: frames the attacker put on air (visibility cost).
    """

    attack: str
    attack_succeeded: bool
    detected: bool
    attacker_frames: int


def _run_ids_injectable(seed: int) -> IdsAblationResult:
    sim = Simulator(seed=seed, trace_enabled=False)
    topo = Topology.equilateral_triangle(("peripheral", "central", "attacker"))
    medium = Medium(sim, topo)
    ids = LinkLayerIds(sim, medium)
    bulb = Lightbulb(sim, medium, "peripheral")
    central = MasterLinkLayer(sim, medium, "central",
                              BdAddress.from_str("C0:FF:EE:00:00:02"),
                              interval=36, timeout=300)
    CentralHost(central)
    attacker = Attacker(sim, medium, "attacker",
                        injection_config=InjectionConfig(max_attempts=60))
    attacker.sniff_new_connections()
    bulb.power_on()
    central.connect(bulb.address)
    sim.run(until_us=1_500_000)
    if not attacker.synchronized:
        return IdsAblationResult("injectable", False, ids.detected_injection(), 0)
    handle = bulb.gatt.find_characteristic(0xFF11).value_handle
    payload, llid = build_injection_payload(14, handle)
    reports: list[InjectionReport] = []
    attacker.inject(payload, llid, on_done=reports.append)
    sim.run(until_us=60_000_000)
    succeeded = bool(reports and reports[0].success)
    frames = reports[0].attempts if reports else 0
    return IdsAblationResult("injectable", succeeded,
                             ids.detected_injection(), frames)


def _run_ids_btlejack(seed: int) -> IdsAblationResult:
    from repro.core.baselines.btlejack import BtleJackHijack

    sim = Simulator(seed=seed, trace_enabled=False)
    topo = Topology.equilateral_triangle(("peripheral", "central", "attacker"))
    medium = Medium(sim, topo)
    ids = LinkLayerIds(sim, medium)
    bulb = Lightbulb(sim, medium, "peripheral")
    central = MasterLinkLayer(sim, medium, "central",
                              BdAddress.from_str("C0:FF:EE:00:00:03"),
                              interval=36, timeout=100)
    CentralHost(central)
    attacker = Attacker(sim, medium, "attacker")
    attacker.sniff_new_connections()
    bulb.power_on()
    central.connect(bulb.address)
    sim.run(until_us=1_500_000)
    if not attacker.synchronized:
        return IdsAblationResult("btlejack", False, ids.detected_jamming(), 0)
    attacker.release_radio()
    results = []
    hijack = BtleJackHijack(sim, attacker.radio, attacker.connection)
    hijack.start(on_done=results.append)
    sim.run(until_us=30_000_000)
    hijacked = bool(results and results[0].hijacked)
    return IdsAblationResult("btlejack", hijacked, ids.detected_jamming(),
                             hijack.jam_frames)


def _run_ids_task(task: tuple[str, int]) -> IdsAblationResult:
    """Picklable dispatch for one IDS-ablation world."""
    attack, seed = task
    if attack == "injectable":
        return _run_ids_injectable(seed)
    return _run_ids_btlejack(seed)


def run_ids_ablation(base_seed: int = 7, n_runs: int = 8,
                     jobs: Optional[int] = None) -> list[IdsAblationResult]:
    """ABL-3: IDS detection of InjectaBLE vs BTLEJack."""
    from repro.runner import parallel_map

    tasks: list[tuple[str, int]] = []
    for i in range(n_runs):
        tasks.append(("injectable", base_seed * 10_000 + i))
        tasks.append(("btlejack", base_seed * 20_000 + i))
    return parallel_map(_run_ids_task, tasks, jobs=jobs)
