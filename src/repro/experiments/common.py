"""Shared harness for the injection sensitivity experiments (paper §VII).

One *trial* = one fresh world (simulator, victims, attacker), one
connection, one injection session; the measurement is the number of
injection attempts before the first success, exactly the quantity the
paper's Figure 9 box-plots show over 25 connections per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.attacker import Attacker
from repro.core.injection import InjectionConfig, InjectionReport
from repro.devices.lightbulb import Lightbulb
from repro.errors import ConfigurationError
from repro.host.att.pdus import WriteCmd, WriteReq
from repro.host.l2cap import CID_ATT, l2cap_encode
from repro.ll.master import MasterLinkLayer
from repro.ll.pdu.address import BdAddress
from repro.ll.pdu.control import TerminateInd
from repro.ll.pdu.data import LLID
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology

#: Default connections per configuration, matching the paper.
CONNECTIONS_PER_CONFIG = 25

#: Hard wall-clock cap per trial (simulated µs).
TRIAL_DEADLINE_US = 120_000_000.0

#: Ring-buffer bound on the in-memory trace of experiment worlds: long
#: campaigns keep the newest records instead of growing without bound
#: (attach a streaming JSONL sink for full history).
TRACE_RING_RECORDS = 100_000


@dataclass(frozen=True)
class InjectionTrial:
    """Configuration of one injection trial.

    Attributes:
        seed: trial seed (derive one per connection).
        hop_interval: connection hop interval in 1.25 ms slots.
        pdu_len: total injected PDU length in bytes (header + payload);
            the paper's "payload size" axis — a 14-byte PDU is the 22-byte
            over-the-air frame used in experiments 1 and 3.
        attacker_distance_m: attacker distance from the Peripheral; the
            Peripheral-Central distance stays 2 m.
        wall_attenuation_db: attenuation of a wall between attacker and
            victims (0 = no wall).
        master_sca_ppm / slave_sca_ppm: victim clock accuracies.
        widening_scale: Slave-side widening reduction (mitigation ablation,
            1.0 = spec behaviour).
        encrypted: pair-and-encrypt the victim connection before injecting
            (countermeasure ablation; injection then cannot produce valid
            traffic).
        collect_metrics: run the world with the
            :class:`~repro.telemetry.metrics.MetricsRegistry` enabled and
            ship its snapshot back in :attr:`TrialResult.metrics`.
    """

    seed: int
    hop_interval: int = 36
    pdu_len: int = 14
    attacker_distance_m: float = 2.0
    wall_attenuation_db: float = 0.0
    master_sca_ppm: float = 50.0
    slave_sca_ppm: float = 50.0
    widening_scale: float = 1.0
    encrypted: bool = False
    collect_metrics: bool = False


@dataclass
class TrialResult:
    """Outcome of one trial.

    Attributes:
        success: injection succeeded within the attempt/time budget.
        attempts: transmissions before (and including) the success.
        effect_observed: the targeted device feature actually triggered
            (validates the heuristic end to end, as the paper does with
            frames that have "a visible effect on the device").
        connection_survived: both victims still consider the connection
            alive after the attack (challenge C2).
        report: raw injection report.
        metrics: the world's merged metrics snapshot (see
            :meth:`repro.telemetry.metrics.MetricsRegistry.snapshot`) when
            the trial ran with ``collect_metrics=True``, else ``None``.
        failure: ``None`` for a trial that ran to completion; otherwise the
            runner's failure taxonomy (``timeout`` / ``crash`` /
            ``error: ...``) for a trial the robust executor terminated,
            lost, or quarantined — see
            :func:`repro.runner.executor.run_units_robust`.
        occupancy: measured ambient band occupancy of the trial's world
            (dense-world trials only, see
            :mod:`repro.experiments.dense`); ``None`` for the 3-device
            panels.
        detection: defense-bench payload (see
            :mod:`repro.experiments.defense`): traffic kind, attack
            outcome and the per-detector verdict summaries from
            :meth:`repro.defense.bank.DetectorBank.summaries`; ``None``
            for unmonitored trials.
    """

    success: bool
    attempts: int
    effect_observed: bool = False
    connection_survived: bool = False
    report: Optional[InjectionReport] = None
    metrics: Optional[dict] = None
    failure: Optional[str] = None
    occupancy: Optional[float] = None
    detection: Optional[dict] = None


def build_injection_payload(pdu_len: int, control_handle: int
                            ) -> tuple[bytes, LLID]:
    """Construct an injected payload yielding exactly ``pdu_len`` PDU bytes.

    Mirrors the paper's choice of frames with observable effects:

    * ``pdu_len >= 12``: ATT Write Request to the bulb's control
      characteristic turning it off, zero-padded to size;
    * ``9 <= pdu_len < 12``: ATT Write Command ditto;
    * ``pdu_len == 4``: ``LL_TERMINATE_IND`` (observable disconnect).
    """
    if pdu_len == 4:
        return TerminateInd().to_payload(), LLID.CONTROL
    if pdu_len < 9:
        raise ConfigurationError(
            f"no observable payload construction for pdu_len={pdu_len}"
        )
    ll_payload_len = pdu_len - 2
    att_len = ll_payload_len - 4  # minus L2CAP header
    value_len = att_len - 3  # minus opcode + handle
    if value_len <= 0:
        value = b""  # empty control write toggles the bulb's power
    elif value_len == 1:
        from repro.devices.lightbulb import OP_TOGGLE

        value = bytes([OP_TOGGLE])
    else:
        value = Lightbulb.power_payload(False, pad_to=value_len)
    if pdu_len >= 12:
        att = WriteReq(control_handle, value).to_bytes()
    else:
        att = WriteCmd(control_handle, value).to_bytes()
    payload = l2cap_encode(CID_ATT, att)
    if len(payload) != ll_payload_len:
        raise ConfigurationError(
            f"payload construction bug: {len(payload)} != {ll_payload_len}"
        )
    return payload, LLID.DATA_START


def _build_topology(trial: InjectionTrial) -> Topology:
    """Victims 2 m apart; attacker on the opposite side at its distance.

    For the 2 m attacker distance this reduces to (a slight variant of)
    the paper's equilateral triangle; for the distance/wall experiments the
    attacker moves away along the axis through the Peripheral (paper
    Fig. 8), with the wall perpendicular to that axis at 1 m.
    """
    topo = Topology()
    topo.place("peripheral", 0.0, 0.0)
    topo.place("central", 2.0, 0.0)
    topo.place("attacker", -trial.attacker_distance_m, 0.0)
    if trial.wall_attenuation_db > 0:
        topo.add_wall(-1.0, -50.0, -1.0, 50.0,
                      attenuation_db=trial.wall_attenuation_db)
    return topo


def run_single_trial(trial: InjectionTrial) -> TrialResult:
    """Run one connection + injection and measure attempts-to-success."""
    result, _sim = run_trial_world(trial)
    return result


def run_trial_world(
    trial: InjectionTrial,
    engine: Optional[str] = None,
    trace_enabled: bool = False,
) -> tuple[TrialResult, Simulator]:
    """:func:`run_single_trial`, returning the simulator too.

    Args:
        trial: the trial configuration.
        engine: simulation engine (``"fast"``/``"reference"``); ``None``
            defers to :func:`repro.sim.fastforward.resolve_engine`.
        trace_enabled: record the full event trace (differential tests
            compare it byte for byte across engines).
    """
    from repro.sim.fastforward import install_engine

    sim = Simulator(seed=trial.seed, trace_enabled=trace_enabled,
                    trace_max_records=None if trace_enabled
                    else TRACE_RING_RECORDS,
                    metrics_enabled=trial.collect_metrics)
    topo = _build_topology(trial)
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "peripheral", sca_ppm=trial.slave_sca_ppm)
    bulb.ll.widening_scale = trial.widening_scale
    central = MasterLinkLayer(
        sim, medium, "central",
        BdAddress.from_str("C0:FF:EE:00:00:01"),
        interval=trial.hop_interval,
        timeout=300,
        sca_ppm=trial.master_sca_ppm,
    )
    from repro.host.stack import CentralHost

    central_host = CentralHost(central)
    attacker = Attacker(sim, medium, "attacker",
                        injection_config=InjectionConfig(max_attempts=100))
    install_engine(sim, medium, central, bulb.ll, engine=engine)
    attacker.sniff_new_connections()
    bulb.power_on()
    central.connect(bulb.address)
    sim.run(until_us=2_000_000)
    if trial.encrypted:
        central_host.pair(encrypt=True)
        sim.run(until_us=4_000_000)

    def snapshot() -> Optional[dict]:
        return sim.metrics.snapshot() if trial.collect_metrics else None

    if not attacker.synchronized:
        return TrialResult(success=False, attempts=0,
                           metrics=snapshot()), sim

    handle = bulb.gatt.find_characteristic(0xFF11).value_handle
    payload, llid = build_injection_payload(trial.pdu_len, handle)
    reports: list[InjectionReport] = []
    attacker.inject(payload, llid, on_done=reports.append)
    sim.run(until_us=TRIAL_DEADLINE_US)
    if not reports:
        return TrialResult(success=False, attempts=0,
                           metrics=snapshot()), sim
    report = reports[0]
    sim.run(until_us=sim.now + 2_000_000)  # let effects propagate
    if trial.pdu_len == 4:
        effect = not bulb.ll.is_connected
        survived = central.is_connected
    else:
        effect = not bulb.is_on
        survived = central.is_connected and bulb.ll.is_connected
    return TrialResult(
        success=report.success,
        attempts=report.attempts,
        effect_observed=effect,
        connection_survived=survived,
        report=report,
        metrics=snapshot(),
    ), sim


def run_trials(
    base_seed: int,
    n_connections: int,
    make_trial: Callable[[int], InjectionTrial],
    *,
    jobs: Optional[int] = None,
    cache=None,
) -> list[TrialResult]:
    """Run ``n_connections`` independent trials with derived seeds.

    Args:
        base_seed: per-configuration seed; trial ``i`` gets seed
            ``base_seed * 10_000 + i``.
        n_connections: trials to run (the paper uses 25).
        make_trial: seed → :class:`InjectionTrial` for this configuration.
        jobs: worker processes (``None`` → ``$REPRO_JOBS`` → serial;
            ``<= 0`` → all cores).  Results are identical regardless of
            ``jobs`` — trials are independent and internally seeded.
        cache: ``True`` for the default on-disk
            :class:`~repro.runner.cache.ResultCache`, an instance to use it,
            ``None``/``False`` to recompute.
    """
    from repro.runner import execute_trials

    trials = [make_trial(base_seed * 10_000 + i) for i in range(n_connections)]
    return execute_trials(trials, jobs=jobs, cache=cache)


def run_trial_units(
    units: "list[tuple]",
    *,
    jobs: Optional[int] = None,
    cache=None,
) -> dict:
    """Execute ``(config key, trial)`` units and group results by key.

    Every sweep module exposes its grid through ``trial_units()`` (the
    campaign engine's uniform entry point); the ``run_experiment_*``
    one-shot panels delegate here so both paths run the exact same
    trials in the exact same order.  Keys keep first-seen (grid) order.
    Trials dispatch through the campaign registry, so units may mix
    trial types (e.g. :class:`InjectionTrial` and ``DenseTrial``).
    """
    from repro.campaign.registry import run_unit_trial
    from repro.runner import execute_trials

    results = execute_trials([trial for _, trial in units],
                             jobs=jobs, cache=cache,
                             runner=run_unit_trial)
    grouped: dict = {}
    for (key, _), result in zip(units, results):
        grouped.setdefault(key, []).append(result)
    return grouped


def attempts_of(results: list[TrialResult]) -> list[int]:
    """Attempt counts of the successful trials."""
    return [r.attempts for r in results if r.success]


def success_rate(results: list[TrialResult]) -> float:
    """Fraction of trials whose injection succeeded."""
    if not results:
        return 0.0
    return sum(1 for r in results if r.success) / len(results)
