"""Experiment 3: impact of the attacker distance (paper §VII-C, Fig. 9).

The lightbulb and a smartphone Central (hop interval 36, the phone's
default) sit 2 m apart; the attacker tries six positions from 1 to 10 m
from the Peripheral (paper Fig. 8: closer than the Central at A, equal at
B, further at C-F).  Expected shape: every position still yields a
successful injection for every connection, with attempt variance growing
with distance.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.common import (
    CONNECTIONS_PER_CONFIG,
    InjectionTrial,
    TrialResult,
    run_trials,
)

#: Position label → attacker distance from the Peripheral (paper Fig. 8).
DISTANCE_POSITIONS: dict[str, float] = {
    "A (1 m)": 1.0,
    "B (2 m)": 2.0,
    "C (4 m)": 4.0,
    "D (6 m)": 6.0,
    "E (8 m)": 8.0,
    "F (10 m)": 10.0,
}

#: The smartphone's default hop interval measured by the paper.
EXPERIMENT_HOP_INTERVAL = 36

#: 22-byte over-the-air Write Request, as in experiment 1.
EXPERIMENT_PDU_LEN = 14


def run_experiment_distance(
    base_seed: int = 3,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    positions: Mapping[str, float] = None,
    jobs: Optional[int] = None,
    cache=None,
    collect_metrics: bool = False,
) -> Mapping[str, list[TrialResult]]:
    """Run the distance sweep; returns results per position label."""
    if positions is None:
        positions = DISTANCE_POSITIONS
    results = {}
    for index, (label, distance) in enumerate(positions.items()):
        results[label] = run_trials(
            base_seed + index * 107,
            n_connections,
            lambda seed, d=distance: InjectionTrial(
                seed=seed, hop_interval=EXPERIMENT_HOP_INTERVAL,
                pdu_len=EXPERIMENT_PDU_LEN, attacker_distance_m=d,
                collect_metrics=collect_metrics,
            ),
            jobs=jobs, cache=cache,
        )
    return results
