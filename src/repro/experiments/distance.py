"""Experiment 3: impact of the attacker distance (paper §VII-C, Fig. 9).

The lightbulb and a smartphone Central (hop interval 36, the phone's
default) sit 2 m apart; the attacker tries six positions from 1 to 10 m
from the Peripheral (paper Fig. 8: closer than the Central at A, equal at
B, further at C-F).  Expected shape: every position still yields a
successful injection for every connection, with attempt variance growing
with distance.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.common import (
    CONNECTIONS_PER_CONFIG,
    InjectionTrial,
    TrialResult,
    run_trial_units,
)

#: Position label → attacker distance from the Peripheral (paper Fig. 8).
DISTANCE_POSITIONS: dict[str, float] = {
    "A (1 m)": 1.0,
    "B (2 m)": 2.0,
    "C (4 m)": 4.0,
    "D (6 m)": 6.0,
    "E (8 m)": 8.0,
    "F (10 m)": 10.0,
}

#: The smartphone's default hop interval measured by the paper.
EXPERIMENT_HOP_INTERVAL = 36

#: 22-byte over-the-air Write Request, as in experiment 1.
EXPERIMENT_PDU_LEN = 14


def trial_units(
    base_seed: int = 3,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    positions: Optional[Mapping[str, float]] = None,
    collect_metrics: bool = False,
) -> list[tuple[str, InjectionTrial]]:
    """Expand the sweep into ``(position label, trial)`` units, grid-major.

    Seed derivation matches the historical panel (``base_seed + k*107``
    per position, ``config_seed*10_000 + i`` per trial).
    """
    if positions is None:
        positions = DISTANCE_POSITIONS
    units = []
    for index, (label, distance) in enumerate(positions.items()):
        config_seed = base_seed + index * 107
        for i in range(n_connections):
            units.append((label, InjectionTrial(
                seed=config_seed * 10_000 + i,
                hop_interval=EXPERIMENT_HOP_INTERVAL,
                pdu_len=EXPERIMENT_PDU_LEN, attacker_distance_m=distance,
                collect_metrics=collect_metrics,
            )))
    return units


def run_experiment_distance(
    base_seed: int = 3,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    positions: Optional[Mapping[str, float]] = None,
    jobs: Optional[int] = None,
    cache=None,
    collect_metrics: bool = False,
) -> Mapping[str, list[TrialResult]]:
    """Run the distance sweep; returns results per position label."""
    return run_trial_units(
        trial_units(base_seed, n_connections, positions, collect_metrics),
        jobs=jobs, cache=cache,
    )
