"""Wall experiment: obstacles between attacker and victims (paper §VII-C).

Same setup as experiment 3, with the attacker behind a wall at 2 to 8 m
from the Peripheral.  Expected shape: more attempts than in free space and
variance growing with distance — but every tested connection still ends in
a successful injection.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.common import (
    CONNECTIONS_PER_CONFIG,
    InjectionTrial,
    TrialResult,
    run_trials,
)

#: Attacker distances behind the wall (metres).
WALL_DISTANCES: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0)

#: Interior-wall attenuation at 2.4 GHz (dB).
WALL_ATTENUATION_DB = 8.0

EXPERIMENT_HOP_INTERVAL = 36
EXPERIMENT_PDU_LEN = 14


def run_experiment_wall(
    base_seed: int = 4,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    distances: tuple[float, ...] = WALL_DISTANCES,
    wall_attenuation_db: float = WALL_ATTENUATION_DB,
    jobs: Optional[int] = None,
    cache=None,
    collect_metrics: bool = False,
) -> Mapping[float, list[TrialResult]]:
    """Run the behind-a-wall sweep; returns results per distance."""
    results = {}
    for index, distance in enumerate(distances):
        results[distance] = run_trials(
            base_seed + index * 109,
            n_connections,
            lambda seed, d=distance: InjectionTrial(
                seed=seed, hop_interval=EXPERIMENT_HOP_INTERVAL,
                pdu_len=EXPERIMENT_PDU_LEN, attacker_distance_m=d,
                wall_attenuation_db=wall_attenuation_db,
                collect_metrics=collect_metrics,
            ),
            jobs=jobs, cache=cache,
        )
    return results
