"""Wall experiment: obstacles between attacker and victims (paper §VII-C).

Same setup as experiment 3, with the attacker behind a wall at 2 to 8 m
from the Peripheral.  Expected shape: more attempts than in free space and
variance growing with distance — but every tested connection still ends in
a successful injection.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.common import (
    CONNECTIONS_PER_CONFIG,
    InjectionTrial,
    TrialResult,
    run_trial_units,
)

#: Attacker distances behind the wall (metres).
WALL_DISTANCES: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0)

#: Interior-wall attenuation at 2.4 GHz (dB).
WALL_ATTENUATION_DB = 8.0

EXPERIMENT_HOP_INTERVAL = 36
EXPERIMENT_PDU_LEN = 14


def trial_units(
    base_seed: int = 4,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    distances: tuple[float, ...] = WALL_DISTANCES,
    wall_attenuation_db: float = WALL_ATTENUATION_DB,
    collect_metrics: bool = False,
) -> list[tuple[float, InjectionTrial]]:
    """Expand the sweep into ``(distance, trial)`` units, grid-major.

    Seed derivation matches the historical panel (``base_seed + k*109``
    per distance, ``config_seed*10_000 + i`` per trial).
    """
    units = []
    for index, distance in enumerate(distances):
        config_seed = base_seed + index * 109
        for i in range(n_connections):
            units.append((distance, InjectionTrial(
                seed=config_seed * 10_000 + i,
                hop_interval=EXPERIMENT_HOP_INTERVAL,
                pdu_len=EXPERIMENT_PDU_LEN, attacker_distance_m=distance,
                wall_attenuation_db=wall_attenuation_db,
                collect_metrics=collect_metrics,
            )))
    return units


def run_experiment_wall(
    base_seed: int = 4,
    n_connections: int = CONNECTIONS_PER_CONFIG,
    distances: tuple[float, ...] = WALL_DISTANCES,
    wall_attenuation_db: float = WALL_ATTENUATION_DB,
    jobs: Optional[int] = None,
    cache=None,
    collect_metrics: bool = False,
) -> Mapping[float, list[TrialResult]]:
    """Run the behind-a-wall sweep; returns results per distance."""
    return run_trial_units(
        trial_units(base_seed, n_connections, distances,
                    wall_attenuation_db, collect_metrics),
        jobs=jobs, cache=cache,
    )
