"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems raise
the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class CodecError(ReproError):
    """A PDU or frame could not be encoded or decoded.

    Raised by the serialisation layers in :mod:`repro.ll.pdu` and
    :mod:`repro.host.att` when bytes on the wire do not form a valid
    protocol data unit, or when a PDU object holds out-of-range fields.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or with an invalid handler."""


class MediumError(SimulationError):
    """A transceiver interacted with the radio medium incorrectly."""


class LinkLayerError(ReproError):
    """A Link-Layer state machine violated the BLE specification."""


class ConnectionStateError(LinkLayerError):
    """An operation required a connection state that does not hold."""


class ProcedureError(LinkLayerError):
    """A Link-Layer control procedure (e.g. connection update) failed."""


class HostError(ReproError):
    """ATT/GATT/GAP layer failure."""


class AttError(HostError):
    """An ATT operation failed; carries the ATT error code.

    Attributes:
        code: ATT error code as defined by the Bluetooth Core Specification
            (e.g. 0x0A ``Attribute Not Found``).
        handle: attribute handle the failed request targeted, or 0.
    """

    def __init__(self, code: int, handle: int = 0, message: str = ""):
        super().__init__(message or f"ATT error 0x{code:02X} on handle 0x{handle:04X}")
        self.code = code
        self.handle = handle


class SecurityError(ReproError):
    """Pairing, key derivation or encryption failure."""


class AttackError(ReproError):
    """An offensive primitive (sniffing, injection, hijack) failed."""


class SnifferError(AttackError):
    """The sniffer could not synchronise with or follow a connection."""


class InjectionError(AttackError):
    """An injection attempt could not be carried out (not merely lost)."""


class HijackError(AttackError):
    """A hijacking scenario failed after the injection phase."""


class ConfigurationError(ReproError):
    """Invalid experiment or model configuration."""


class ServiceError(ReproError):
    """The campaign service (coordinator, worker, or client) failed.

    Raised for protocol violations, unreachable endpoints, and serving
    states that cannot make progress (e.g. every worker of a managed
    fleet died mid-campaign).
    """
